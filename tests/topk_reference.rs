//! Theorem 2 stress test: the partition algorithm's Top-K refined
//! queries are validated against an exhaustive reference refiner that
//! (a) enumerates every refined-query candidate by unpruned rule
//! application, (b) keeps those with at least one meaningful SLCA over
//! the document, and (c) sorts by dissimilarity.

use std::collections::HashSet;
use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, DblpConfig};
use xrefine_repro::invindex::{Index, Posting};
use xrefine_repro::prelude::*;
use xrefine_repro::slca::{slca_scan_eager, MeaningfulFilter, SearchForConfig};
use xrefine_repro::xrefine::{brute_force_rqs, partition_refine, PartitionOptions, RefineSession};

/// The reference refiner: exhaustive candidates filtered by meaningful
/// SLCA existence, sorted by (dissimilarity, keywords).
fn reference_topk(
    index: &Index,
    query: &Query,
    rules: &xrefine_repro::lexicon::RuleSet,
    k: usize,
) -> Vec<(Vec<String>, f64)> {
    // availability = the whole document vocabulary
    let avail = |w: &str| index.contains_keyword(w);
    let all = brute_force_rqs(query, &avail, rules);

    let ids: Vec<_> = query
        .keywords()
        .iter()
        .filter_map(|w| index.vocabulary().get(w))
        .collect();
    let ids = if ids.is_empty() {
        rules
            .rhs_keywords()
            .iter()
            .filter_map(|w| index.vocabulary().get(w))
            .collect()
    } else {
        ids
    };
    let filter = MeaningfulFilter::infer(index, &ids, &SearchForConfig::default());

    let mut kept: Vec<(Vec<String>, f64)> = Vec::new();
    for cand in all {
        let lists: Vec<&[Posting]> = cand
            .keywords
            .iter()
            .map(|w| index.list(w).map(|l| l.as_slice()).unwrap_or(&[]))
            .collect();
        let slcas = filter.filter(slca_scan_eager(&lists));
        if !slcas.is_empty() {
            kept.push((cand.keywords.clone(), cand.dissimilarity));
        }
    }
    kept.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    kept.truncate(k);
    kept
}

#[test]
fn partition_topk_matches_exhaustive_reference() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 25,
        ..Default::default()
    }));
    let index = Index::build(Arc::clone(&doc));
    let engine = XRefineEngine::from_document(Arc::clone(&doc), EngineConfig::default());

    // Small queries keep the brute-force enumeration tractable.
    let queries = [
        vec!["databse", "xml"],
        vec!["keyword", "serach"],
        vec!["data", "ghostword"],
        vec!["twig", "pattern", "join"],
        vec!["stream", "processing"],
    ];

    let mut exact_matches = 0usize;
    for q in &queries {
        let query = Query::from_keywords(q.iter().map(|s| s.to_string()));
        let rules = engine.rules_for(&query);
        let k = 2;

        let reference = reference_topk(&index, &query, &rules, k);
        let session = RefineSession::new(&index, query, rules).unwrap();
        let out = partition_refine(
            &session,
            &PartitionOptions {
                k,
                ..Default::default()
            },
        );

        // The best dissimilarity must match the reference exactly.
        match (out.refinements.first(), reference.first()) {
            (Some(got), Some(want)) => {
                let got_best = out
                    .refinements
                    .iter()
                    .map(|r| r.candidate.dissimilarity)
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(got_best, want.1, "query {q:?}");
                let _ = got;
            }
            (None, None) => {}
            other => panic!("existence mismatch on {q:?}: {other:?}"),
        }

        // All of partition's candidates must be real reference candidates
        // (correct cost, meaningful results exist).
        let ref_all = reference_topk(
            &index,
            &Query::from_keywords(q.iter().map(|s| s.to_string())),
            &engine.rules_for(&Query::from_keywords(q.iter().map(|s| s.to_string()))),
            1000,
        );
        let ref_set: HashSet<(Vec<String>, u64)> = ref_all
            .iter()
            .map(|(kws, ds)| (kws.clone(), ds.to_bits()))
            .collect();
        for r in &out.refinements {
            assert!(
                ref_set.contains(&(
                    r.candidate.keywords.clone(),
                    r.candidate.dissimilarity.to_bits()
                )),
                "partition produced {:?} (ds {}) unknown to the reference on {q:?}",
                r.candidate.keywords,
                r.candidate.dissimilarity
            );
        }

        // The engine re-ranks the Top-2K dissimilarity pool with the full
        // ranking model (Algorithm 2 line 19), so the returned K are a
        // rank-ordered subset of the reference's Top-2K by dissimilarity.
        let ref_pool = reference_topk(
            &index,
            &Query::from_keywords(q.iter().map(|s| s.to_string())),
            &engine.rules_for(&Query::from_keywords(q.iter().map(|s| s.to_string()))),
            2 * k,
        );
        if let Some(worst_pool_ds) = ref_pool.last().map(|(_, d)| *d) {
            if out.original_ok {
                // the original query is fine: exactly one entry, ds 0
                assert_eq!(out.refinements.len(), 1, "{q:?}");
                assert_eq!(out.refinements[0].candidate.dissimilarity, 0.0);
                assert_eq!(reference.first().map(|(_, d)| *d), Some(0.0), "{q:?}");
            } else {
                for r in &out.refinements {
                    assert!(
                        r.candidate.dissimilarity <= worst_pool_ds,
                        "{q:?}: returned ds {} outside the reference Top-2K pool \
                         (worst {worst_pool_ds})",
                        r.candidate.dissimilarity
                    );
                }
                // the count matches what exists
                assert_eq!(
                    out.refinements.len(),
                    k.min(ref_pool.len()),
                    "{q:?}: expected min(K, |pool|) refinements"
                );
                exact_matches += 1;
            }
        }
    }
    assert!(exact_matches >= 3, "too few non-trivial queries validated");
}

//! Index persistence over any [`KvStore`] (the paper stores all indices in
//! Berkeley DB, §VII; we store them in the workspace B+-tree).
//!
//! Key space (format version 3):
//!
//! * `M/version`                — format version (raw varint: it is the
//!   byte that says how everything else is framed, so it cannot itself
//!   be framed);
//! * `D/doc`                    — the source document (builder replay
//!   stream), so [`crate::KvBackedIndex`] can open with no re-parse;
//! * `V/<keyword>`              — keyword id (u32 LE);
//! * `L/<id:u32 BE>`            — front-coded [`PostingList`] encoding;
//! * `S/N`, `S/G`               — `N_T` / `G_T` vectors (varints);
//! * `S/T/<type BE><kw BE>`     — `tf(k,T)` (varint);
//! * `S/D/<type BE><kw BE>`     — `f^T_k` (varint).
//!
//! In version 3 **every** value except `M/version` is framed as
//! `varint(len(payload)) ‖ crc32(payload):u32 LE ‖ payload`, so a flipped
//! byte in any stored value is detected at decode time, not interpreted.
//! Version 2 framed only the `L/` lists; version 1 framed nothing and has
//! no `D/doc`. Both remain readable. Corruption of any entry yields
//! [`KvError::Corrupt`], never a panic.
//!
//! Node-type and keyword ids are deterministic for a given document (both
//! interners assign ids in parse order), so an index loaded against the
//! same document is bit-identical to a rebuilt one.

use crate::index::Index;
use crate::postings::{read_varint, write_varint, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{crc32, KvError, KvStore, Result};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Document, DocumentBuilder, NodeTypeId};

/// Current on-disk format: every value class framed and checksummed,
/// plus the embedded source document.
pub const FORMAT_VERSION: u64 = 3;

/// The intermediate format: framed posting lists and the embedded
/// document, but raw vocabulary/statistics values. Still readable.
pub const V2_FORMAT_VERSION: u64 = 2;

/// The original format: raw list encodings, document supplied by the
/// caller. Still readable.
pub const LEGACY_FORMAT_VERSION: u64 = 1;

/// Damage to one statistics entry, recorded by the lenient loader
/// instead of failing the whole open: the named keyword's ranking inputs
/// are incomplete, everything else is intact.
#[derive(Debug, Clone)]
pub struct StatDamage {
    pub keyword: KeywordId,
    /// The damaged entry (`S/T/...` or `S/D/...`), human-readable.
    pub entry: String,
    pub detail: String,
}

/// Writes the index into `store` at the current format version.
pub fn persist(index: &Index, store: &mut dyn KvStore) -> Result<()> {
    persist_versioned(index, store, FORMAT_VERSION)
}

/// Writes the index at an explicit format version (the older paths keep
/// version-1/2 fixtures producible for compatibility tests).
pub fn persist_versioned(index: &Index, store: &mut dyn KvStore, version: u64) -> Result<()> {
    if !(LEGACY_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(KvError::corrupt(format!(
            "cannot write unknown index version {version}"
        )));
    }
    let mut buf = Vec::new();
    write_varint(&mut buf, version);
    store.put(b"M/version", &buf)?;

    if version >= 2 {
        store.put(
            b"D/doc",
            &encode_value(version, encode_document(index.document())),
        )?;
    }

    for (k, text) in index.vocabulary().iter() {
        let mut key = Vec::with_capacity(2 + text.len());
        key.extend_from_slice(b"V/");
        key.extend_from_slice(text.as_bytes());
        store.put(&key, &encode_value(version, k.0.to_le_bytes().to_vec()))?;
    }

    for (i, list) in index.lists().iter().enumerate() {
        store.put(&list_key(i as u32), &encode_list_value(version, list))?;
    }

    let mut nbuf = Vec::new();
    for &n in index.stats().n_nodes_vec() {
        write_varint(&mut nbuf, n);
    }
    store.put(b"S/N", &encode_value(version, nbuf))?;

    let mut gbuf = Vec::new();
    for &g in index.stats().distinct_keywords_vec() {
        write_varint(&mut gbuf, g);
    }
    store.put(b"S/G", &encode_value(version, gbuf))?;

    // The stat tables are hash maps; write their entries in sorted
    // (t, k) order so the put sequence — and therefore the page layout
    // of ordered stores — is a pure function of the index contents.
    // `tests/parallel_persist.rs` relies on persisted byte-identity.
    let mut tf: Vec<_> = index.stats().iter_tf().collect();
    tf.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    for (t, k, v) in tf {
        store.put(
            &stat_key(b"S/T/", t, k),
            &encode_value(version, varint_vec(v)),
        )?;
    }
    let mut df: Vec<_> = index.stats().iter_df().collect();
    df.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    for (t, k, v) in df {
        store.put(
            &stat_key(b"S/D/", t, k),
            &encode_value(version, varint_vec(v)),
        )?;
    }
    store.sync()
}

/// Loads an index from `store` against the (identical) source document.
/// Accepts every known format version; any damage is an error (the
/// resident path has no way to degrade per keyword).
pub fn load(doc: Arc<Document>, store: &dyn KvStore) -> Result<Index> {
    let version = read_version(store)?;
    let vocab = load_vocab(store, version)?;

    let mut lists = vec![PostingList::new(); vocab.len()];
    for (key, value) in store.scan_prefix(b"L/")? {
        let id = u32::from_be_bytes(
            key[2..]
                .try_into()
                .map_err(|_| KvError::corrupt("bad list key"))?,
        ) as usize;
        match lists.get_mut(id) {
            Some(slot) => *slot = decode_list_value(version, &value)?,
            None => return Err(KvError::corrupt("list for unknown keyword")),
        }
    }

    let stats = load_stats(store, version)?;
    if stats.n_nodes_vec().len() != doc.node_types().len() {
        return Err(KvError::corrupt(
            "document does not match persisted index (type count)",
        ));
    }
    Ok(Index::from_parts(doc, vocab, lists, stats))
}

/// Reads and validates the format version.
pub(crate) fn read_version(store: &dyn KvStore) -> Result<u64> {
    let vbuf = store
        .get(b"M/version")?
        .ok_or_else(|| KvError::corrupt("missing index version"))?;
    let mut pos = 0;
    let version =
        read_varint(&vbuf, &mut pos).ok_or_else(|| KvError::corrupt("bad version encoding"))?;
    if !(LEGACY_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(KvError::corrupt(format!(
            "unsupported index version {version}"
        )));
    }
    Ok(version)
}

/// Rebuilds the keyword table from the `V/` entries. Vocabulary damage
/// is always fatal: keyword ids must be gapless, so a single undecodable
/// id makes every later id ambiguous.
pub(crate) fn load_vocab(store: &dyn KvStore, version: u64) -> Result<KeywordTable> {
    let mut vocab = KeywordTable::new();
    let mut texts: Vec<(u32, String)> = Vec::new();
    for (key, value) in store.scan_prefix(b"V/")? {
        let text = String::from_utf8(key[2..].to_vec())
            .map_err(|_| KvError::corrupt("non-UTF-8 keyword"))?;
        let raw = decode_value(version, &value, &format!("keyword id for {text:?}"))?;
        let id = u32::from_le_bytes(
            raw.try_into()
                .map_err(|_| KvError::corrupt(format!("bad keyword id for {text:?}")))?,
        );
        texts.push((id, text));
    }
    texts.sort_by_key(|(id, _)| *id);
    for (expected, (id, text)) in texts.iter().enumerate() {
        if *id as usize != expected {
            return Err(KvError::corrupt("keyword id gap"));
        }
        vocab.intern(text);
    }
    Ok(vocab)
}

/// Rebuilds the frequency statistics from the `S/` entries. Any damage
/// is an error (see [`load_stats_lenient`] for the serving path).
pub(crate) fn load_stats(store: &dyn KvStore, version: u64) -> Result<TypeStats> {
    let (stats, damage) = load_stats_lenient(store, version)?;
    match damage.first() {
        None => Ok(stats),
        Some(d) => Err(KvError::corrupt(format!("{}: {}", d.entry, d.detail))),
    }
}

/// Rebuilds the frequency statistics, recording per-keyword damage
/// instead of failing: a damaged `tf`/`df` entry is dropped (reads as 0)
/// and attributed to its keyword, so the serving layer can answer the
/// remaining keywords and report the degradation. The global `S/N`/`S/G`
/// vectors have no per-keyword owner, so damage there is still fatal.
pub(crate) fn load_stats_lenient(
    store: &dyn KvStore,
    version: u64,
) -> Result<(TypeStats, Vec<StatDamage>)> {
    let n_raw = store
        .get(b"S/N")?
        .ok_or_else(|| KvError::corrupt("missing S/N"))?;
    let n_nodes = decode_varint_vec(decode_value(version, &n_raw, "S/N")?)?;
    let g_raw = store
        .get(b"S/G")?
        .ok_or_else(|| KvError::corrupt("missing S/G"))?;
    let distinct = decode_varint_vec(decode_value(version, &g_raw, "S/G")?)?;

    let mut damage: Vec<StatDamage> = Vec::new();
    let mut load_table =
        |prefix: &[u8], name: &str| -> Result<HashMap<(NodeTypeId, KeywordId), u64>> {
            let mut table = HashMap::new();
            for (key, value) in store.scan_prefix(prefix)? {
                let (t, k) = parse_stat_key(&key)?;
                let entry = format!("{name}(type {}, keyword {})", t.0, k.0);
                let decoded = decode_value(version, &value, &entry).and_then(decode_varint_scalar);
                match decoded {
                    Ok(v) => {
                        table.insert((t, k), v);
                    }
                    Err(e) => damage.push(StatDamage {
                        keyword: k,
                        entry,
                        detail: e.to_string(),
                    }),
                }
            }
            Ok(table)
        };
    let tf = load_table(b"S/T/", "tf")?;
    let df = load_table(b"S/D/", "df")?;
    Ok((TypeStats::set_from_parts(n_nodes, distinct, tf, df), damage))
}

/// The `L/` key of a keyword id.
pub(crate) fn list_key(id: u32) -> Vec<u8> {
    let mut key = Vec::with_capacity(6);
    key.extend_from_slice(b"L/");
    key.extend_from_slice(&id.to_be_bytes());
    key
}

/// Frames `payload` as `varint(len) ‖ crc32 ‖ payload`.
pub(crate) fn frame_value(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame written by [`frame_value`] and returns its payload.
pub(crate) fn unframe_value<'a>(value: &'a [u8], what: &str) -> Result<&'a [u8]> {
    let mut pos = 0;
    let len = read_varint(value, &mut pos)
        .ok_or_else(|| KvError::corrupt(format!("{what}: bad frame length header")))?
        as usize;
    let rest = value.get(pos..).unwrap_or(&[]);
    if rest.len() != 4 + len {
        return Err(KvError::corrupt(format!(
            "{what}: frame length mismatch: header {len}, got {}",
            rest.len().saturating_sub(4)
        )));
    }
    let Some((crc_bytes, payload)) = rest.split_first_chunk::<4>() else {
        return Err(KvError::corrupt(format!(
            "{what}: frame too short for its checksum"
        )));
    };
    let stored = u32::from_le_bytes(*crc_bytes);
    let actual = crc32(payload);
    if stored != actual {
        return Err(KvError::corrupt(format!(
            "{what}: checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(payload)
}

/// Encodes a non-list stored value for `version` (framed from v3 on).
pub(crate) fn encode_value(version: u64, payload: Vec<u8>) -> Vec<u8> {
    if version >= 3 {
        frame_value(&payload)
    } else {
        payload
    }
}

/// Decodes a non-list stored value for `version`.
pub(crate) fn decode_value<'a>(version: u64, value: &'a [u8], what: &str) -> Result<&'a [u8]> {
    if version >= 3 {
        unframe_value(value, what)
    } else {
        Ok(value)
    }
}

/// Encodes one posting list as a stored value for `version` (framed
/// from v2 on).
pub(crate) fn encode_list_value(version: u64, list: &PostingList) -> Vec<u8> {
    let payload = list.encode();
    if version >= 2 {
        frame_value(&payload)
    } else {
        payload
    }
}

/// Decodes one stored list value, validating the frame where the
/// version has one.
pub(crate) fn decode_list_value(version: u64, value: &[u8]) -> Result<PostingList> {
    let payload = if version >= 2 {
        unframe_value(value, "posting list")?
    } else {
        value
    };
    PostingList::decode(payload).ok_or_else(|| KvError::corrupt("undecodable posting list"))
}

/// Serializes the document as a builder replay stream: per node in
/// pre-order, its depth, tag, attributes and text. Replaying through
/// [`DocumentBuilder`] reproduces byte-identical Dewey labels, symbols
/// and node types (both interners assign ids in first-appearance order,
/// which pre-order preserves).
pub(crate) fn encode_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, doc.len() as u64);
    for (id, node) in doc.nodes() {
        write_varint(&mut out, node.dewey.len() as u64);
        write_bytes(&mut out, doc.tag_name(id).as_bytes());
        write_varint(&mut out, node.attributes.len() as u64);
        for (name, value) in &node.attributes {
            write_bytes(&mut out, name.as_bytes());
            write_bytes(&mut out, value.as_bytes());
        }
        write_bytes(&mut out, node.text.as_bytes());
    }
    out
}

/// Rebuilds the document from a replay stream.
pub(crate) fn decode_document(bytes: &[u8]) -> Result<Document> {
    let corrupt = |what: &str| KvError::corrupt(format!("document blob: {what}"));
    let mut pos = 0;
    let count = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node count"))?;
    if count == 0 {
        return Err(corrupt("empty document"));
    }
    let mut builder = DocumentBuilder::new();
    let mut open_depth = 0usize;
    let mut seen_root = false;
    for _ in 0..count {
        let depth =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node depth"))? as usize;
        if depth == 0 || depth > open_depth + 1 {
            return Err(corrupt("invalid node depth"));
        }
        if depth == 1 {
            if seen_root {
                return Err(corrupt("multiple roots"));
            }
            seen_root = true;
        }
        let tag = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad tag"))?;
        while open_depth >= depth {
            builder.close_element();
            open_depth -= 1;
        }
        builder.open_element(&tag);
        open_depth += 1;
        let attrs = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr count"))?;
        for _ in 0..attrs {
            let name = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr name"))?;
            let value = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr value"))?;
            builder.attribute(&name, &value);
        }
        let text = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad text"))?;
        if !text.is_empty() {
            builder.text(&text);
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    while open_depth > 0 {
        builder.close_element();
        open_depth -= 1;
    }
    Ok(builder.finish())
}

// ----- integrity checking (the `scrub` path) -------------------------

/// Integrity findings for one key-space section of a persisted index.
#[derive(Debug, Clone)]
pub struct SectionReport {
    pub name: &'static str,
    /// Entries examined.
    pub entries: u64,
    /// Damaged entries: (entry description, what is wrong with it).
    pub damaged: Vec<(String, String)>,
}

impl SectionReport {
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// The result of a full offline integrity walk over a persisted index.
#[derive(Debug, Clone)]
pub struct IntegrityReport {
    /// The format version, when the `M/version` entry itself was readable.
    pub version: Option<u64>,
    pub sections: Vec<SectionReport>,
}

impl IntegrityReport {
    pub fn is_clean(&self) -> bool {
        self.version.is_some() && self.sections.iter().all(SectionReport::is_clean)
    }

    pub fn total_entries(&self) -> u64 {
        self.sections.iter().map(|s| s.entries).sum()
    }

    pub fn total_damaged(&self) -> usize {
        self.sections.iter().map(|s| s.damaged.len()).sum()
    }
}

/// Walks every entry of a persisted index, validating frames, checksums
/// and decodability, and reports per-section damage without stopping at
/// the first hit. Storage-level read failures are reported as damage of
/// the section being walked, so one rotten page does not hide the state
/// of the rest of the store.
pub fn verify_store(store: &dyn KvStore) -> IntegrityReport {
    let mut sections = Vec::new();
    let version = match read_version(store) {
        Ok(v) => {
            sections.push(SectionReport {
                name: "meta",
                entries: 1,
                damaged: Vec::new(),
            });
            Some(v)
        }
        Err(e) => {
            sections.push(SectionReport {
                name: "meta",
                entries: 1,
                damaged: vec![("M/version".into(), e.to_string())],
            });
            None
        }
    };
    // Without a version byte, assume the current format: damage reports
    // for the rest of the store are then best-effort rather than absent.
    let v = version.unwrap_or(FORMAT_VERSION);

    // Document blob (v2+).
    let mut doc_section = SectionReport {
        name: "document",
        entries: 0,
        damaged: Vec::new(),
    };
    match store.get(b"D/doc") {
        Ok(Some(blob)) => {
            doc_section.entries = 1;
            if let Err(e) =
                decode_value(v, &blob, "D/doc").and_then(|raw| decode_document(raw).map(|_| ()))
            {
                doc_section.damaged.push(("D/doc".into(), e.to_string()));
            }
        }
        Ok(None) => {
            doc_section.entries = 1;
            if v >= 2 {
                doc_section
                    .damaged
                    .push(("D/doc".into(), "missing embedded document".into()));
            }
        }
        Err(e) => doc_section.damaged.push(("D/doc".into(), e.to_string())),
    }
    sections.push(doc_section);

    // Vocabulary: per-entry decode, then the global gapless-ids check.
    let mut vocab_section = SectionReport {
        name: "vocabulary",
        entries: 0,
        damaged: Vec::new(),
    };
    let mut ids: Vec<u32> = Vec::new();
    let mut names: HashMap<u32, String> = HashMap::new();
    match store.scan_prefix(b"V/") {
        Ok(entries) => {
            for (key, value) in entries {
                vocab_section.entries += 1;
                let text = String::from_utf8_lossy(&key[2..]).into_owned();
                let entry = format!("V/{text}");
                match decode_value(v, &value, &entry).and_then(|raw| {
                    raw.try_into()
                        .map(u32::from_le_bytes)
                        .map_err(|_| KvError::corrupt("keyword id is not 4 bytes"))
                }) {
                    Ok(id) => {
                        ids.push(id);
                        names.insert(id, text);
                    }
                    Err(e) => vocab_section.damaged.push((entry, e.to_string())),
                }
            }
            ids.sort_unstable();
            for (expected, id) in ids.iter().enumerate() {
                if *id as usize != expected {
                    vocab_section
                        .damaged
                        .push(("V/".into(), format!("keyword id gap at {expected}")));
                    break;
                }
            }
        }
        Err(e) => vocab_section.damaged.push(("<scan>".into(), e.to_string())),
    }
    sections.push(vocab_section);

    // Posting lists.
    let mut list_section = SectionReport {
        name: "lists",
        entries: 0,
        damaged: Vec::new(),
    };
    match store.scan_prefix(b"L/") {
        Ok(entries) => {
            for (key, value) in entries {
                list_section.entries += 1;
                let entry = match key[2..].try_into().map(u32::from_be_bytes) {
                    Ok(id) => match names.get(&id) {
                        Some(text) => format!("L/{id} ({text:?})"),
                        None => format!("L/{id}"),
                    },
                    Err(_) => format!("L/{:?}", &key[2..]),
                };
                if let Err(e) = decode_list_value(v, &value) {
                    list_section.damaged.push((entry, e.to_string()));
                }
            }
        }
        Err(e) => list_section.damaged.push(("<scan>".into(), e.to_string())),
    }
    sections.push(list_section);

    // Statistics: the global vectors, then both per-keyword tables.
    let mut stat_section = SectionReport {
        name: "stats",
        entries: 0,
        damaged: Vec::new(),
    };
    for name in ["S/N", "S/G"] {
        stat_section.entries += 1;
        match store.get(name.as_bytes()) {
            Ok(Some(value)) => {
                if let Err(e) =
                    decode_value(v, &value, name).and_then(|raw| decode_varint_vec(raw).map(|_| ()))
                {
                    stat_section.damaged.push((name.into(), e.to_string()));
                }
            }
            Ok(None) => stat_section.damaged.push((name.into(), "missing".into())),
            Err(e) => stat_section.damaged.push((name.into(), e.to_string())),
        }
    }
    for (prefix, name) in [(b"S/T/".as_slice(), "tf"), (b"S/D/".as_slice(), "df")] {
        match store.scan_prefix(prefix) {
            Ok(entries) => {
                for (key, value) in entries {
                    stat_section.entries += 1;
                    let entry = match parse_stat_key(&key) {
                        Ok((t, k)) => format!("{name}(type {}, keyword {})", t.0, k.0),
                        Err(_) => format!("{name}/{:?}", &key[4..]),
                    };
                    if let Err(e) = decode_value(v, &value, &entry)
                        .and_then(|raw| decode_varint_scalar(raw).map(|_| ()))
                    {
                        stat_section.damaged.push((entry, e.to_string()));
                    }
                }
            }
            Err(e) => stat_section.damaged.push(("<scan>".into(), e.to_string())),
        }
    }
    sections.push(stat_section);

    IntegrityReport { version, sections }
}

// ----- helpers -------------------------------------------------------

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    let raw = bytes.get(*pos..end)?;
    let s = String::from_utf8(raw.to_vec()).ok()?;
    *pos = end;
    Some(s)
}

fn stat_key(prefix: &[u8], t: NodeTypeId, k: KeywordId) -> Vec<u8> {
    let mut key = Vec::with_capacity(prefix.len() + 8);
    key.extend_from_slice(prefix);
    key.extend_from_slice(&t.0.to_be_bytes());
    key.extend_from_slice(&k.0.to_be_bytes());
    key
}

fn parse_stat_key(key: &[u8]) -> Result<(NodeTypeId, KeywordId)> {
    if key.len() != 4 + 8 {
        return Err(KvError::corrupt("bad stat key"));
    }
    let be = |s: &[u8]| -> Result<u32> {
        s.try_into()
            .map(u32::from_be_bytes)
            .map_err(|_| KvError::corrupt("bad stat key"))
    };
    Ok((NodeTypeId(be(&key[4..8])?), KeywordId(be(&key[8..12])?)))
}

fn varint_vec(v: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2);
    write_varint(&mut buf, v);
    buf
}

fn decode_varint_scalar(bytes: &[u8]) -> Result<u64> {
    let mut pos = 0;
    let v = read_varint(bytes, &mut pos).ok_or_else(|| KvError::corrupt("bad varint"))?;
    if pos != bytes.len() {
        return Err(KvError::corrupt("trailing bytes in varint"));
    }
    Ok(v)
}

fn decode_varint_vec(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        out.push(
            read_varint(bytes, &mut pos).ok_or_else(|| KvError::corrupt("bad varint vector"))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    #[test]
    fn persist_load_roundtrip_preserves_everything() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();

        assert_eq!(built.vocabulary().len(), loaded.vocabulary().len());
        for (k, text) in built.vocabulary().iter() {
            assert_eq!(loaded.vocabulary().get(text), Some(k));
            assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
        }
        for t in doc.node_types().iter() {
            assert_eq!(built.stats().n_nodes(t), loaded.stats().n_nodes(t));
            assert_eq!(
                built.stats().distinct_keywords(t),
                loaded.stats().distinct_keywords(t)
            );
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.stats().tf(t, k), loaded.stats().tf(t, k));
                assert_eq!(built.stats().df(t, k), loaded.stats().df(t, k));
            }
        }
    }

    #[test]
    fn older_format_stores_remain_readable() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        for version in [LEGACY_FORMAT_VERSION, V2_FORMAT_VERSION] {
            let mut store = MemKv::new();
            persist_versioned(&built, &mut store, version).unwrap();
            if version == LEGACY_FORMAT_VERSION {
                // no embedded document in v1
                assert!(store.get(b"D/doc").unwrap().is_none());
            }
            let loaded = load(Arc::clone(&doc), &store).unwrap();
            assert_eq!(loaded.total_postings(), built.total_postings());
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
            }
        }
    }

    #[test]
    fn corrupted_list_payload_is_an_error_not_a_panic() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();

        // Flip one payload byte behind the checksum.
        let key = list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        match load(Arc::clone(&doc), &store) {
            Err(e) if e.is_corrupt() => assert!(e.to_string().contains("checksum"), "{e}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }

        // Truncate a frame: length header no longer matches.
        persist(&built, &mut store).unwrap();
        let mut value = store.get(&key).unwrap().unwrap();
        value.pop();
        store.put(&key, &value).unwrap();
        match load(doc, &store) {
            Err(e) if e.is_corrupt() => assert!(e.to_string().contains("length"), "{e}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }
    }

    #[test]
    fn v3_frames_every_value_class() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Flipping a byte in a *stat* or *vocabulary* value — unframed in
        // v2 — must now be detected, not silently reinterpreted.
        for prefix in [b"V/".as_slice(), b"S/".as_slice()] {
            for (key, value) in store.scan_prefix(prefix).unwrap() {
                for pos in 0..value.len() {
                    let mut damaged = value.clone();
                    damaged[pos] ^= 0xFF;
                    let mut s2 = MemKv::new();
                    for (k2, v2) in store.scan_prefix(b"").unwrap() {
                        s2.put(&k2, if k2 == key { &damaged } else { &v2 }).unwrap();
                    }
                    let got = load(Arc::clone(&doc), &s2);
                    assert!(
                        got.is_err(),
                        "flip at {pos} of {:?} went undetected",
                        String::from_utf8_lossy(&key)
                    );
                }
            }
        }
    }

    #[test]
    fn lenient_stats_attribute_damage_to_the_keyword() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let victim = built.vocabulary().get("xml").unwrap();
        // Damage one tf entry of "xml".
        let (key, value) = store
            .scan_prefix(b"S/T/")
            .unwrap()
            .into_iter()
            .find(|(k, _)| k[8..12] == victim.0.to_be_bytes())
            .expect("xml has tf entries");
        let mut bad = value.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &bad).unwrap();

        // Strict loading fails…
        assert!(load_stats(&store, FORMAT_VERSION).is_err());
        // …lenient loading degrades exactly that keyword.
        let (stats, damage) = load_stats_lenient(&store, FORMAT_VERSION).unwrap();
        assert_eq!(damage.len(), 1);
        assert_eq!(damage[0].keyword, victim);
        // The damaged entry reads as 0; undamaged keywords are untouched.
        let john = built.vocabulary().get("john").unwrap();
        for t in doc.node_types().iter() {
            assert_eq!(stats.tf(t, john), built.stats().tf(t, john));
        }
    }

    #[test]
    fn verify_store_reports_damage_per_section() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let clean = verify_store(&store);
        assert!(clean.is_clean(), "{clean:?}");
        assert_eq!(clean.version, Some(FORMAT_VERSION));
        assert!(clean.total_entries() > 4);

        // Damage one list and one stat entry.
        let key = list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        let (skey, svalue) = store.scan_prefix(b"S/T/").unwrap().remove(0);
        let mut sbad = svalue.clone();
        *sbad.last_mut().unwrap() ^= 0xFF;
        store.put(&skey, &sbad).unwrap();

        let report = verify_store(&store);
        assert!(!report.is_clean());
        assert_eq!(report.total_damaged(), 2);
        let damaged_sections: Vec<&str> = report
            .sections
            .iter()
            .filter(|s| !s.is_clean())
            .map(|s| s.name)
            .collect();
        assert_eq!(damaged_sections, ["lists", "stats"]);
    }

    #[test]
    fn document_blob_roundtrips_exactly() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let framed = store.get(b"D/doc").unwrap().expect("v2+ embeds the doc");
        let blob = decode_value(FORMAT_VERSION, &framed, "D/doc").unwrap();
        let replayed = decode_document(blob).unwrap();
        assert_eq!(replayed.len(), doc.len());
        for ((_, a), (_, b)) in doc.nodes().zip(replayed.nodes()) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.node_type, b.node_type);
            assert_eq!(a.text, b.text);
            assert_eq!(a.attributes, b.attributes);
        }
        assert_eq!(doc.to_xml(), replayed.to_xml());
    }

    #[test]
    fn load_rejects_missing_or_mismatched_state() {
        let doc = Arc::new(figure1());
        let store = MemKv::new();
        assert!(load(Arc::clone(&doc), &store).is_err());

        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Different document (different type count) must be rejected.
        let other = Arc::new(xmldom::fixtures::tiny());
        assert!(load(other, &store).is_err());
    }

    #[test]
    fn persist_works_on_disk_store_too() {
        use kvstore::DiskKv;
        let dir = std::env::temp_dir().join(format!("invindex_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.db");
        let _ = std::fs::remove_file(&path);

        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        {
            let mut store = DiskKv::open(&path).unwrap();
            persist(&built, &mut store).unwrap();
        }
        let store = DiskKv::open(&path).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();
        assert_eq!(loaded.total_postings(), built.total_postings());
        std::fs::remove_file(&path).unwrap();
    }
}

//! Keyword queries and refined-query candidates.

use std::collections::BTreeSet;
use std::fmt;
use xmldom::tokenize_query;

/// A keyword query: an ordered list of keywords (order matters for the
/// merge/split/acronym rules, which apply to *adjacent* terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    keywords: Vec<String>,
}

impl Query {
    /// Parses free text into a query with the same tokenizer the index
    /// uses.
    pub fn parse(text: &str) -> Self {
        Query {
            keywords: tokenize_query(text),
        }
    }

    pub fn from_keywords<I: IntoIterator<Item = S>, S: Into<String>>(words: I) -> Self {
        Query {
            keywords: words.into_iter().map(Into::into).collect(),
        }
    }

    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The keyword *set* view (queries are sets for result semantics,
    /// sequences for refinement rules).
    pub fn keyword_set(&self) -> BTreeSet<&str> {
        self.keywords.iter().map(|s| s.as_str()).collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.keywords.join(", "))
    }
}

/// A refined-query candidate: the keyword set plus its dissimilarity
/// `dSim(Q, RQ)` (Definition 3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct RqCandidate {
    /// Canonical (sorted, deduplicated) keyword set.
    pub keywords: Vec<String>,
    pub dissimilarity: f64,
}

impl RqCandidate {
    pub fn new(mut keywords: Vec<String>, dissimilarity: f64) -> Self {
        keywords.sort();
        keywords.dedup();
        RqCandidate {
            keywords,
            dissimilarity,
        }
    }

    /// Canonical identity string (used for dedup across partitions).
    pub fn canonical(&self) -> String {
        self.keywords.join("\u{1f}")
    }

    /// True when this candidate *is* the original query (dissimilarity 0
    /// by construction of the DP).
    pub fn is_original(&self, q: &Query) -> bool {
        let mine: BTreeSet<&str> = self.keywords.iter().map(|s| s.as_str()).collect();
        mine == q.keyword_set()
    }
}

impl fmt::Display for RqCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}} (dSim={})",
            self.keywords.join(", "),
            self.dissimilarity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_matches_index_tokenizer() {
        let q = Query::parse("On-Line  DATA base!");
        assert_eq!(q.keywords(), ["on", "line", "data", "base"]);
        assert_eq!(q.to_string(), "{on, line, data, base}");
        assert!(Query::parse("  ").is_empty());
    }

    #[test]
    fn candidate_canonicalizes() {
        let a = RqCandidate::new(vec!["b".to_string(), "a".to_string(), "b".to_string()], 1.0);
        assert_eq!(a.keywords, ["a", "b"]);
        let b = RqCandidate::new(vec!["a".to_string(), "b".to_string()], 2.0);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn is_original_compares_sets() {
        let q = Query::from_keywords(["xml", "john"]);
        let rq = RqCandidate::new(vec!["john".to_string(), "xml".to_string()], 0.0);
        assert!(rq.is_original(&q));
        let rq2 = RqCandidate::new(vec!["xml".to_string()], 2.0);
        assert!(!rq2.is_original(&q));
    }
}

//! A seeded Zipf-distributed sampler.
//!
//! Keyword frequencies in DBLP are heavily skewed — the premise behind
//! the paper's short-list eager algorithm ("the frequencies of query
//! keywords typically vary significantly", §VI-C). The generators sample
//! title terms with this Zipf law so the synthetic corpora reproduce that
//! skew. Implemented over a precomputed CDF with binary search (the
//! workspace avoids extra crates such as `rand_distr` — DESIGN.md §5).

use rand::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be positive; `s >= 0` (s = 0 is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n` (0 = most probable).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 5);
        // everything stays in range (no panic) and the tail is hit
        assert!(counts.iter().skip(50).sum::<usize>() > 0);
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "min={min} max={max}");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}

//! `metric-catalogue`: every metric name passed to `counter!` /
//! `gauge!` / `histogram!` and every name passed to `trace::span` /
//! `trace::count` / `trace::event` / `trace::capture` must appear in the
//! catalogue DESIGN.md declares between its
//! `<!-- xlint:catalogue:begin/end -->` markers. Metric names must also
//! follow the `<crate>_<noun>_<unit>` convention. An undocumented metric
//! is a dashboard that silently reads zero; this rule makes the docs and
//! the code diverge loudly instead.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub const RULE: &str = "metric-catalogue";

const METRIC_MACROS: &[&str] = &["counter", "gauge", "histogram"];
const TRACE_FNS: &[&str] = &["span", "count", "event", "capture"];

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if config.catalogue.is_empty() {
        return; // no catalogue loaded (unit-test config); nothing to check against
    }
    let toks = file.code_tokens();
    for i in 0..toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        // `counter!("name")` / `gauge!(..)` / `histogram!(..)`
        if matches!(t.kind, TokenKind::Ident)
            && METRIC_MACROS.contains(&t.text.as_str())
            && i + 3 < toks.len()
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('(')
            && matches!(toks[i + 3].kind, TokenKind::Str)
        {
            let name_tok = toks[i + 3];
            check_metric_name(file, config, name_tok, out);
        }
        // `trace::span("name")` etc. — collect every string literal in
        // the first argument (span names can come out of a `match`).
        if matches!(t.kind, TokenKind::Ident)
            && TRACE_FNS.contains(&t.text.as_str())
            && i >= 3
            && toks[i - 3].is_ident("trace")
            && toks[i - 2].is_punct(':')
            && toks[i - 1].is_punct(':')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            for name_tok in first_arg_strings(&toks, i + 1) {
                if !config.catalogue.contains(&name_tok.text) {
                    super::emit(
                        out,
                        file,
                        RULE,
                        name_tok.line,
                        name_tok.col,
                        format!(
                            "span/count name `{}` is not in the DESIGN.md catalogue",
                            name_tok.text
                        ),
                        "add it to the catalogue section of DESIGN.md (or fix the name)".into(),
                    );
                }
            }
        }
    }
}

fn check_metric_name(file: &SourceFile, config: &Config, tok: &Token, out: &mut Vec<Finding>) {
    let name = &tok.text;
    if !follows_convention(name, config) {
        super::emit(
            out,
            file,
            RULE,
            tok.line,
            tok.col,
            format!("metric name `{name}` does not follow `<crate>_<noun>_<unit>`"),
            format!(
                "prefix with one of [{}], suffix with one of [{}]",
                config.metric_crates.join(", "),
                config
                    .metric_units
                    .iter()
                    .map(|u| format!("_{u}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    } else if !config.catalogue.contains(name) {
        super::emit(
            out,
            file,
            RULE,
            tok.line,
            tok.col,
            format!("metric `{name}` is not in the DESIGN.md catalogue"),
            "add it to the catalogue section of DESIGN.md (or fix the name)".into(),
        );
    }
}

fn follows_convention(name: &str, config: &Config) -> bool {
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return false;
    }
    let Some(prefix) = config
        .metric_crates
        .iter()
        .find(|c| name.starts_with(&format!("{c}_")))
    else {
        return false;
    };
    let Some(unit) = config
        .metric_units
        .iter()
        .find(|u| name.ends_with(&format!("_{u}")))
    else {
        return false;
    };
    // A non-empty noun must sit between prefix and unit.
    name.len() > prefix.len() + 1 + unit.len() + 1
}

/// String literals inside the first macro/call argument starting at the
/// opening paren `toks[open]`. The argument ends at a `,` at paren depth
/// 1 outside any braces/brackets, or at the matching `)`.
fn first_arg_strings<'a>(toks: &[&'a Token], open: usize) -> Vec<&'a Token> {
    let mut strings = Vec::new();
    let mut paren = 0usize;
    let mut brace = 0usize;
    let mut bracket = 0usize;
    for t in &toks[open..] {
        match t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace = brace.saturating_sub(1),
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokenKind::Punct(',') if paren == 1 && brace == 0 && bracket == 0 => break,
            TokenKind::Str => strings.push(*t),
            _ => {}
        }
    }
    strings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn config() -> Config {
        let mut c = Config::workspace_defaults();
        for n in [
            "kvstore_pager_syncs_total",
            "query",
            "stack-refine",
            "pages.read",
        ] {
            c.catalogue.insert(n.to_string());
        }
        c
    }

    fn findings(src: &str) -> Vec<(usize, String)> {
        let file = SourceFile::parse("crates/kvstore/src/pager.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&file, &config(), &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn documented_names_pass() {
        let fs = findings(
            "fn f() {\n\
             counter!(\"kvstore_pager_syncs_total\").inc();\n\
             trace::span(\"query\");\n\
             trace::count(\"pages.read\", 1);\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn undocumented_metric_is_flagged() {
        let fs = findings("fn f() { counter!(\"kvstore_pager_flushes_total\").inc(); }\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].1.contains("not in the DESIGN.md catalogue"));
    }

    #[test]
    fn convention_violations_are_flagged() {
        for bad in [
            "pager_syncs_total",      // unknown crate prefix
            "kvstore_syncs",          // missing unit suffix
            "kvstore_total",          // empty noun
            "kvstore_Pager_ns_total", // uppercase
        ] {
            let fs = findings(&format!("fn f() {{ counter!(\"{bad}\").inc(); }}\n"));
            assert_eq!(fs.len(), 1, "{bad}: {fs:?}");
            assert!(fs[0].1.contains("does not follow"), "{bad}: {fs:?}");
        }
    }

    #[test]
    fn span_names_inside_match_arms_are_collected() {
        let fs = findings(
            "fn f() {\n\
             trace::span(match algo {\n\
             Algo::Stack => \"stack-refine\",\n\
             Algo::Part => \"nonexistent-span\",\n\
             });\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].1.contains("nonexistent-span"));
    }

    #[test]
    fn second_argument_strings_are_not_names() {
        let fs = findings("fn f() { trace::event(\"query\", \"free text payload\"); }\n");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn empty_catalogue_disables_the_rule() {
        let file = SourceFile::parse(
            "a.rs",
            "fn f() { counter!(\"zzz\"); }\n",
            FileKind::Production,
        );
        let mut out = Vec::new();
        check(&file, &Config::workspace_defaults(), &mut out);
        assert!(out.is_empty());
    }
}

//! The query service behind the HTTP surface.
//!
//! [`QueryService`] is the one-method seam between the server chassis
//! (queues, sockets, drain) and the engine: the lifecycle tests plug in
//! slow or failing stand-ins to provoke shedding and timeouts without
//! needing a pathological corpus. [`EngineService`] is the production
//! implementation over [`XRefineEngine`], applying the degradation
//! policy from ISSUE-3 at the protocol level: a per-query storage
//! failure is *that request's* `500` — the connection, the worker and
//! the engine all keep serving.

use std::sync::Arc;

use obs::metrics::json_string;
use xrefine::{QueryFailure, RefineOutcome, XRefineEngine};

/// SLCA Dewey labels beyond this many are elided from the JSON (the
/// count is always exact).
const MAX_SLCAS_LISTED: usize = 20;

/// A status code plus a JSON body, ready for the HTTP layer to frame.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    pub status: u16,
    pub body: String,
}

/// What a worker does with a popped request. Implementations must be
/// `Send + Sync`: one instance is shared by every worker thread.
pub trait QueryService: Send + Sync {
    fn answer(&self, query: &str) -> ServiceReply;
}

/// Production service: answers queries through the shared engine.
pub struct EngineService {
    engine: Arc<XRefineEngine>,
}

impl EngineService {
    pub fn new(engine: Arc<XRefineEngine>) -> EngineService {
        EngineService { engine }
    }

    pub fn engine(&self) -> &Arc<XRefineEngine> {
        &self.engine
    }
}

impl QueryService for EngineService {
    fn answer(&self, query: &str) -> ServiceReply {
        match self.engine.answer_detailed(query) {
            Ok(outcome) => ServiceReply {
                status: 200,
                body: render_outcome(query, &outcome),
            },
            Err(failure) => ServiceReply {
                status: 500,
                body: render_failure(query, &failure),
            },
        }
    }
}

/// Renders a successful outcome as JSON. Hand-rolled like every other
/// emitter in the workspace; strings go through `json_string`.
pub fn render_outcome(query: &str, outcome: &RefineOutcome) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"query\":");
    out.push_str(&json_string(query));
    out.push_str(",\"original_ok\":");
    out.push_str(if outcome.original_ok { "true" } else { "false" });
    out.push_str(",\"refinements\":[");
    for (i, r) in outcome.refinements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"keywords\":[");
        for (j, kw) in r.candidate.keywords.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(kw));
        }
        out.push_str("],\"dissimilarity\":");
        out.push_str(&format!("{:.6}", r.candidate.dissimilarity));
        out.push_str(",\"rank_score\":");
        out.push_str(&format!("{:.6}", r.rank_score));
        out.push_str(",\"slca_count\":");
        out.push_str(&r.slcas.len().to_string());
        out.push_str(",\"slcas\":[");
        for (j, d) in r.slcas.iter().take(MAX_SLCAS_LISTED).enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&d.to_string()));
        }
        out.push_str("]}");
    }
    out.push_str("],\"advances\":");
    out.push_str(&outcome.advances.to_string());
    out.push_str(",\"random_accesses\":");
    out.push_str(&outcome.random_accesses.to_string());
    out.push_str(",\"degraded\":[");
    for (i, d) in outcome.degraded.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"keyword\":");
        out.push_str(&json_string(&d.keyword));
        out.push_str(",\"reason\":");
        out.push_str(&json_string(&d.reason));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a per-query failure as the `500` JSON envelope.
pub fn render_failure(query: &str, failure: &QueryFailure) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"query\":");
    out.push_str(&json_string(query));
    out.push_str(",\"error\":");
    out.push_str(&json_string(&failure.to_string()));
    out.push_str(",\"keyword\":");
    match &failure.keyword {
        Some(kw) => out.push_str(&json_string(kw)),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrefine::EngineConfig;

    fn tiny_engine() -> Arc<XRefineEngine> {
        let xml = "<bib><paper><title>xml keyword search</title>\
                   <year>2003</year></paper></bib>";
        Arc::new(XRefineEngine::from_xml(xml, EngineConfig::default()).unwrap())
    }

    #[test]
    fn engine_service_answers_with_json() {
        let svc = EngineService::new(tiny_engine());
        let reply = svc.answer("xml keyword");
        assert_eq!(reply.status, 200);
        assert!(
            reply.body.starts_with("{\"query\":\"xml keyword\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"refinements\":["), "{}", reply.body);
        assert!(reply.body.contains("\"degraded\":[]"), "{}", reply.body);
        // The body must itself be well-formed enough to round-trip the
        // outer braces (cheap structural sanity check).
        assert!(reply.body.ends_with('}'), "{}", reply.body);
    }

    #[test]
    fn outcome_json_escapes_and_caps_slcas() {
        let svc = EngineService::new(tiny_engine());
        let reply = svc.answer("\"quoted\"\\path");
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\\\"quoted\\\""), "{}", reply.body);
    }
}

//! XRefine — the interactive keyword-search prototype of the paper.
//!
//! ```text
//! xrefine-cli [--data <file.xml>|dblp|baseball|figure1] \
//!             [--algorithm partition|sle|stack] [--k N]
//! xrefine-cli index <file.xml>|dblp|baseball|figure1 <store.db> \
//!             [--ingest dom|stream] [--threads N] [--format v3|v4]
//! xrefine-cli query --store <store.db> [--algorithm ...] [--k N] \
//!             [--threads N --batch <queries.txt>]
//! ```
//!
//! The flag-only form parses and indexes the document in memory, then
//! reads keyword queries from stdin (one per line). `index` persists the
//! built index into a kvstore file; `query --store` serves the same REPL
//! straight from that file — the document is replayed from the embedded
//! blob and posting lists are decoded lazily, per query.
//!
//! `index --ingest stream` builds via the zero-copy scanner
//! (`invindex::build_streaming`) instead of DOM parsing; `--threads N`
//! parallelises the tokenize/DF phases (or, with `--ingest dom`, uses
//! the DOM-parallel builder). Both paths persist byte-identical stores.
//! `--format` picks the store layout: `v4` (default) writes compressed
//! postings — blocked front-coded Dewey lists with skip tables, the
//! deduplicated DAG document and packed stat tables — while `v3` writes
//! the flat layout for tooling that predates compression. Every reader
//! (`query --store`, `update`, `scrub`, the HTTP server) accepts both.
//!
//! `--batch <file>` switches from the REPL to a concurrent driver: the
//! file's queries (one per line, `#` comments allowed) are striped
//! across `--threads` workers sharing one engine, and the run reports
//! per-thread throughput, latency percentiles, per-phase timers and
//! cache/cursor counters. Per-query storage errors are reported and do
//! not stop the batch.
//!
//! Observability (see DESIGN.md "Observability"):
//!
//! * `--metrics` dumps the global metrics registry in Prometheus text
//!   format when the session (REPL, batch or `--trace`) ends — pager
//!   page reads, WAL syncs, cache hit/miss, SLCA steps, per-phase
//!   latency histograms;
//! * `--trace <query>` answers that one query with span capture on and
//!   pretty-prints the span tree (phases, per-keyword list loads,
//!   cursor counters), then exits.

use bench::percentile;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrefine::{Algorithm, EngineConfig, PhaseTimings, XRefineEngine};

const USAGE: &str = "usage: xrefine-cli [--data <file.xml>|dblp|baseball|figure1] \
[--algorithm partition|sle|stack] [--k N]\n       \
xrefine-cli index <file.xml>|dblp|baseball|figure1 <store.db> \
[--ingest dom|stream] [--threads N] [--format v3|v4]\n       \
xrefine-cli query --store <store.db> [--algorithm partition|sle|stack] [--k N] \
[--threads N --batch <queries.txt>] [--metrics] [--trace <query>]\n       \
xrefine-cli update --store <store.db> [--add <fragment.xml>]... [--remove SLOT]... [--compact]
       xrefine-cli scrub --store <store.db>";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IngestMode {
    /// Parse a DOM, then walk it (the reference path).
    Dom,
    /// Zero-copy span scan with parallel chunked tokenization.
    Stream,
}

enum Command {
    /// Build an index for a document and persist it to a kvstore file.
    Index {
        data: String,
        store: String,
        ingest: IngestMode,
        threads: usize,
        version: u64,
    },
    /// Verify the integrity of a persisted store, section by section.
    Scrub { store: String },
    /// Apply one maintenance transaction (adds/removes in argument
    /// order) to a maintained store, optionally compacting after.
    Update {
        store: String,
        ops: Vec<UpdateOp>,
        compact: bool,
    },
    /// Serve queries, either from a document spec or a persisted store.
    Repl(Options),
}

/// One `--add`/`--remove` argument, in command-line order.
enum UpdateOp {
    /// Path of an XML fragment file to insert as a new record.
    AddFile(String),
    /// Record slot to delete.
    Remove(usize),
}

struct Options {
    data: String,
    store: Option<String>,
    algorithm: Algorithm,
    k: usize,
    max_render: usize,
    threads: usize,
    batch: Option<String>,
    metrics: bool,
    trace: Option<String>,
}

fn parse_args() -> Result<Command, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(|s| s.as_str()) == Some("index") {
        let mut ingest = IngestMode::Dom;
        let mut threads = 1usize;
        let mut version = invindex::persist::FORMAT_VERSION;
        let mut positional: Vec<String> = Vec::new();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--format" => {
                    version = match args.get(i + 1).map(|s| s.as_str()) {
                        Some("v3") => invindex::persist::V3_FORMAT_VERSION,
                        Some("v4") => invindex::persist::FORMAT_VERSION,
                        other => return Err(format!("--format must be v3 or v4, got {other:?}")),
                    };
                    i += 2;
                }
                "--ingest" => {
                    ingest = match args.get(i + 1).map(|s| s.as_str()) {
                        Some("dom") => IngestMode::Dom,
                        Some("stream") => IngestMode::Stream,
                        other => {
                            return Err(format!("--ingest must be dom or stream, got {other:?}"))
                        }
                    };
                    i += 2;
                }
                "--threads" => {
                    threads = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--threads needs a positive integer")?;
                    i += 2;
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
                _ => {
                    positional.push(args[i].clone());
                    i += 1;
                }
            }
        }
        if positional.len() != 2 {
            return Err(USAGE.into());
        }
        return Ok(Command::Index {
            data: positional.remove(0),
            store: positional.remove(0),
            ingest,
            threads,
            version,
        });
    }
    if args.first().map(|s| s.as_str()) == Some("update") {
        let mut store = None;
        let mut ops = Vec::new();
        let mut compact = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--store" => {
                    store = Some(args.get(i + 1).ok_or("--store needs a value")?.clone());
                    i += 2;
                }
                "--add" => {
                    ops.push(UpdateOp::AddFile(
                        args.get(i + 1)
                            .ok_or("--add needs a fragment file")?
                            .clone(),
                    ));
                    i += 2;
                }
                "--remove" => {
                    let slot = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--remove needs a record slot (a non-negative integer)")?;
                    ops.push(UpdateOp::Remove(slot));
                    i += 2;
                }
                "--compact" => {
                    compact = true;
                    i += 1;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        let store = store.ok_or("update requires --store")?;
        if ops.is_empty() && !compact {
            return Err("update needs at least one --add/--remove, or --compact".to_string());
        }
        return Ok(Command::Update {
            store,
            ops,
            compact,
        });
    }
    if args.first().map(|s| s.as_str()) == Some("scrub") {
        if args.len() != 3 || args[1] != "--store" {
            return Err(USAGE.into());
        }
        return Ok(Command::Scrub {
            store: args.remove(2),
        });
    }
    let flags_at = usize::from(args.first().map(|s| s.as_str()) == Some("query"));
    let mut opts = Options {
        data: "figure1".to_string(),
        store: None,
        algorithm: Algorithm::Partition,
        k: 3,
        max_render: 2,
        threads: 1,
        batch: None,
        metrics: false,
        trace: None,
    };
    let mut i = flags_at;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                opts.data = args.get(i + 1).ok_or("--data needs a value")?.clone();
                i += 2;
            }
            "--store" => {
                opts.store = Some(args.get(i + 1).ok_or("--store needs a path")?.clone());
                i += 2;
            }
            "--algorithm" => {
                opts.algorithm = match args.get(i + 1).map(|s| s.as_str()) {
                    Some("partition") => Algorithm::Partition,
                    Some("sle") => Algorithm::ShortListEager,
                    Some("stack") => Algorithm::StackRefine,
                    other => return Err(format!("unknown algorithm {other:?}")),
                };
                i += 2;
            }
            "--k" => {
                opts.k = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--k needs a positive integer")?;
                i += 2;
            }
            "--max-render" => {
                opts.max_render = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-render needs an integer")?;
                i += 2;
            }
            "--threads" => {
                opts.threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--threads needs a positive integer")?;
                i += 2;
            }
            "--batch" => {
                opts.batch = Some(args.get(i + 1).ok_or("--batch needs a file")?.clone());
                i += 2;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--trace" => {
                opts.trace = Some(args.get(i + 1).ok_or("--trace needs a query")?.clone());
                i += 2;
            }
            "--help" | "-h" => {
                return Err(USAGE.into());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.threads > 1 && opts.batch.is_none() {
        return Err("--threads only applies to --batch runs".into());
    }
    Ok(Command::Repl(opts))
}

fn load_document(spec: &str) -> Result<Arc<xmldom::Document>, String> {
    match spec {
        "figure1" => Ok(Arc::new(xmldom::fixtures::figure1())),
        "dblp" => Ok(Arc::new(datagen::generate_dblp(&datagen::DblpConfig {
            authors: 500,
            ..Default::default()
        }))),
        "baseball" => Ok(Arc::new(datagen::generate_baseball(
            &datagen::BaseballConfig::default(),
        ))),
        path => {
            let xml =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Arc::new(
                xmldom::parse_document(&xml).map_err(|e| format!("parse error: {e}"))?,
            ))
        }
    }
}

/// The raw XML of a document spec — read from disk for a path,
/// rendered for the built-in corpora.
fn load_xml(spec: &str) -> Result<String, String> {
    match spec {
        "figure1" | "dblp" | "baseball" => Ok(load_document(spec)?.to_xml()),
        path => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
    }
}

/// `xrefine-cli index <data> <db> [--ingest dom|stream] [--threads N]
/// [--format v3|v4]`: build and persist. Both ingest modes write
/// byte-identical stores at whichever format version is selected.
fn build_store(
    data: &str,
    store_path: &str,
    ingest: IngestMode,
    threads: usize,
    version: u64,
) -> Result<(), String> {
    let index = match ingest {
        IngestMode::Dom => {
            let doc = load_document(data)?;
            if threads > 1 {
                invindex::build_parallel(doc, threads)
            } else {
                invindex::Index::build(doc)
            }
        }
        IngestMode::Stream => {
            let xml = load_xml(data)?;
            invindex::build_streaming(&xml, threads)
                .map_err(|e| format!("scan error in '{data}': {e}"))?
        }
    };
    let mut store = kvstore::DiskKv::open(std::path::Path::new(store_path))
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;
    invindex::persist::persist_versioned(&index, &mut store, version)
        .map_err(|e| format!("cannot persist index: {e}"))?;
    eprintln!(
        "indexed {} elements ({} keywords) from '{}' into {} \
         (format v{version}, {:?} ingest, {} thread(s))",
        index.document().len(),
        index.vocabulary().len(),
        data,
        store_path,
        ingest,
        threads.max(1)
    );
    Ok(())
}

/// `xrefine-cli update --store <db> ...`: one atomic maintenance
/// transaction through the WAL, with an optional compaction after.
fn update_store(store_path: &str, ops: &[UpdateOp], compact: bool) -> Result<(), String> {
    use invindex::MaintOp;
    let maint = invindex::MaintIndex::open(std::path::Path::new(store_path))
        .map_err(|e| format!("cannot open maintained store {store_path}: {e}"))?;
    if !ops.is_empty() {
        let ops: Vec<MaintOp> = ops
            .iter()
            .map(|op| match op {
                UpdateOp::AddFile(path) => std::fs::read_to_string(path)
                    .map(|fragment| MaintOp::Add { fragment })
                    .map_err(|e| format!("cannot read fragment {path}: {e}")),
                UpdateOp::Remove(slot) => Ok(MaintOp::Remove { slot: *slot }),
            })
            .collect::<Result<_, _>>()?;
        let report = maint
            .commit(&ops)
            .map_err(|e| format!("update rejected: {e}"))?;
        println!(
            "committed txn {}: {} record(s) ({} added, {} removed, {} store op(s))",
            report.seq, report.records, report.added, report.removed, report.batch_ops
        );
    }
    if compact {
        let ran = maint
            .compact()
            .map_err(|e| format!("compaction failed: {e}"))?;
        println!(
            "compaction: {}",
            if ran {
                "folded WAL overlay into base store"
            } else {
                "overlay empty, nothing to do"
            }
        );
    }
    Ok(())
}

/// `xrefine-cli scrub --store <db>`: per-section integrity report.
/// Returns `Ok(true)` when every page and every entry verified.
fn scrub_store(store_path: &str) -> Result<bool, String> {
    let path = std::path::Path::new(store_path);
    if !path.exists() {
        return Err(format!("no such store: {store_path}"));
    }
    let kv = kvstore::DiskKv::open(path).map_err(|e| format!("cannot open {store_path}: {e}"))?;

    // Layer 1: page checksums (catches damage anywhere in the file).
    let pages = kv
        .verify_pages()
        .map_err(|e| format!("cannot scan pages of {store_path}: {e}"))?;
    if pages.checksummed() {
        println!(
            "pages: format v{}, {} total: {} valid, {} free, {} damaged",
            pages.format_version,
            pages.total_pages,
            pages.valid_pages,
            pages.zero_pages,
            pages.bad_pages.len()
        );
        for (id, reason) in &pages.bad_pages {
            println!("  page {id}: {reason}");
        }
    } else {
        println!(
            "pages: legacy format v{} ({} pages, no checksums to verify)",
            pages.format_version, pages.total_pages
        );
    }

    // Layer 2: the index's own framing, section by section.
    let report = invindex::verify_store(&kv);
    match report.version {
        Some(v) => println!("index format: v{v}"),
        None => println!("index format: unreadable version record"),
    }
    for section in &report.sections {
        println!(
            "section {:<10} {:>6} entries, {} damaged",
            section.name,
            section.entries,
            section.damaged.len()
        );
        for (entry, detail) in &section.damaged {
            println!("  {entry}: {detail}");
        }
    }

    // Layer 3: online-maintenance artifacts. A WAL next to the store
    // means it is maintained: verify the *merged* (base + replayed
    // overlay) view too, since that is what readers are served.
    use kvstore::KvStore as _;
    let mut maint_clean = true;
    let base = std::path::Path::new(store_path);
    let tmp_path = base.with_extension("db.new");
    if tmp_path.exists() {
        println!(
            "maintenance: half-compacted checkpoint {} left by a crash;              recoverable (next open discards it and replays the WAL)",
            tmp_path.display()
        );
    }
    let wal_present = base
        .with_extension("wal")
        .metadata()
        .map(|m| m.len() > 0)
        .unwrap_or(false);
    if wal_present || tmp_path.exists() {
        match kvstore::DurableKv::open(base) {
            Ok(durable) => {
                println!(
                    "maintenance: WAL replayed, txn seq {}, {} overlay entr(ies)",
                    durable.txn_seq(),
                    durable.overlay_len()
                );
                let merged = invindex::verify_store(&durable);
                for section in &merged.sections {
                    println!(
                        "merged  {:<10} {:>6} entries, {} damaged",
                        section.name,
                        section.entries,
                        section.damaged.len()
                    );
                    for (entry, detail) in &section.damaged {
                        println!("  {entry}: {detail}");
                    }
                }
                if let (Some(version), Ok(Some(value))) =
                    (merged.version, durable.get(invindex::maint::MAINT_KEY))
                {
                    match invindex::maint::decode_maint_meta(version, &value) {
                        Ok((seq, records)) => println!(
                            "maintenance: seq {seq}, {records} record(s) under maintenance"
                        ),
                        Err(e) => {
                            maint_clean = false;
                            println!("maintenance: damaged M/maint record: {e}");
                        }
                    }
                }
                maint_clean &= merged.is_clean();
            }
            Err(e) => {
                maint_clean = false;
                println!("maintenance: WAL replay failed: {e}");
            }
        }
    }

    let clean = pages.is_clean() && report.is_clean() && maint_clean;
    if clean {
        println!(
            "{store_path}: clean ({} entries verified)",
            report.total_entries()
        );
    } else {
        println!(
            "{store_path}: DAMAGED ({} bad page(s), {} bad entr(ies))",
            pages.bad_pages.len(),
            report.total_damaged()
        );
    }
    Ok(clean)
}

fn build_engine(opts: &Options) -> Result<XRefineEngine, String> {
    let config = EngineConfig {
        algorithm: opts.algorithm,
        k: opts.k,
        ..Default::default()
    };
    match &opts.store {
        Some(path) => {
            let engine = XRefineEngine::from_store(std::path::Path::new(path), config)
                .map_err(|e| format!("cannot open store {path}: {e}"))?;
            eprintln!(
                "opened persisted index {} ({} elements, {:?}, Top-{})",
                path,
                engine.document().len(),
                opts.algorithm,
                opts.k
            );
            Ok(engine)
        }
        None => {
            let doc = load_document(&opts.data)?;
            eprintln!(
                "indexed {} elements from '{}' ({:?}, Top-{})",
                doc.len(),
                opts.data,
                opts.algorithm,
                opts.k
            );
            Ok(XRefineEngine::from_document(doc, config))
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Command::Index {
            data,
            store,
            ingest,
            threads,
            version,
        }) => {
            return match build_store(&data, &store, ingest, threads, version) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            };
        }
        Ok(Command::Update {
            store,
            ops,
            compact,
        }) => {
            return match update_store(&store, &ops, compact) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            };
        }
        Ok(Command::Scrub { store }) => {
            return match scrub_store(&store) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(2),
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            };
        }
        Ok(Command::Repl(o)) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match build_engine(&opts) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(query) = &opts.trace {
        let code = trace_one_query(&engine, query);
        if opts.metrics {
            dump_metrics();
        }
        return code;
    }

    if let Some(batch_path) = &opts.batch {
        let queries = match load_batch(batch_path) {
            Ok(q) => q,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let report = run_batch(&engine, &queries, opts.threads);
        print!("{report}");
        if opts.metrics {
            dump_metrics();
        }
        return ExitCode::SUCCESS;
    }

    let code = repl(&engine, &opts);
    if opts.metrics {
        dump_metrics();
    }
    code
}

/// `--trace <query>`: answer one query with span capture on and print
/// the span tree. A failing query still prints its (partial) trace.
fn trace_one_query(engine: &XRefineEngine, query: &str) -> ExitCode {
    let (result, trace) = engine.answer_traced(query);
    print!("{}", trace.render());
    match result {
        Ok(outcome) => {
            match outcome.best() {
                Some(r) if outcome.original_ok => {
                    println!(
                        "-> {} meaningful result(s), no refinement needed",
                        r.slcas.len()
                    )
                }
                Some(r) => println!(
                    "-> best refinement {{{}}} dSim={} with {} result(s)",
                    r.candidate.keywords.join(", "),
                    r.candidate.dissimilarity,
                    r.slcas.len()
                ),
                None => println!("-> no refined query with meaningful results"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--metrics`: the global registry in Prometheus text format.
fn dump_metrics() {
    print!("{}", obs::global().snapshot().render_prometheus());
}

fn repl(engine: &XRefineEngine, opts: &Options) -> ExitCode {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprint!("query> ");
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            eprint!("query> ");
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        // per-query errors (e.g. a corrupt list page) are reported with
        // the keyword they trace back to, and the loop keeps serving:
        // one bad page must not kill the session
        let outcome = match engine.answer_detailed(line) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("storage error: {e}");
                eprint!("query> ");
                continue;
            }
        };
        for d in &outcome.degraded {
            eprintln!("degraded: keyword \"{}\": {}", d.keyword, d.reason);
        }
        if outcome.original_ok {
            if let Some(r) = outcome.best() {
                let _ = writeln!(
                    out,
                    "query has {} meaningful result(s); no refinement needed",
                    r.slcas.len()
                );
                render(engine, &r.slcas, opts.max_render, &mut out);
            }
            // over-broad queries get narrowing suggestions (§IX extension)
            if let Ok(Some(suggestions)) = engine.narrow(line, &xrefine::NarrowOptions::default()) {
                if !suggestions.is_empty() {
                    let _ = writeln!(out, "result set is large; consider narrowing:");
                    for s in &suggestions {
                        let _ = writeln!(
                            out,
                            "  + \"{}\" -> {} result(s)",
                            s.added,
                            s.refinement.slcas.len()
                        );
                    }
                }
            }
        } else if outcome.refinements.is_empty() {
            let _ = writeln!(out, "no refined query with meaningful results found");
        } else {
            let _ = writeln!(
                out,
                "query needs refinement; Top-{} refined queries:",
                outcome.refinements.len()
            );
            for (rank, r) in outcome.refinements.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {{{}}}  dSim={}  rank={:.4}  results={}",
                    rank + 1,
                    r.candidate.keywords.join(", "),
                    r.candidate.dissimilarity,
                    r.rank_score,
                    r.slcas.len()
                );
            }
            if let Some((_, steps)) =
                engine.explain(line, &outcome.refinements[0].candidate.keywords)
            {
                let rendered: Vec<String> = steps
                    .iter()
                    .filter(|s| !matches!(s, xrefine::AppliedOp::Kept(_)))
                    .map(|s| s.to_string())
                    .collect();
                if !rendered.is_empty() {
                    let _ = writeln!(out, "  derivation: {}", rendered.join("; "));
                }
            }
            render(
                engine,
                &outcome.refinements[0].slcas,
                opts.max_render,
                &mut out,
            );
        }
        eprint!("query> ");
    }
    ExitCode::SUCCESS
}

fn render(engine: &XRefineEngine, slcas: &[xmldom::Dewey], max: usize, out: &mut impl Write) {
    for d in slcas.iter().take(max) {
        if let Some(xml) = engine.render(d) {
            let _ = writeln!(out, "--- result at {d} ---");
            for line in xml.lines().take(12) {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Concurrent batch driver
// ---------------------------------------------------------------------

/// Reads a batch file: one query per line; blank lines and `#` comments
/// are skipped.
fn load_batch(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// One worker's tally of a batch run. Failures are collected (query +
/// error) rather than printed mid-run: under `--threads N` interleaved
/// `eprintln!` lines from workers would garble the report.
#[derive(Default)]
struct ThreadTally {
    answered: usize,
    failures: Vec<(String, String)>,
    latencies: Vec<Duration>,
    phases: PhaseTimings,
    advances: u64,
    random_accesses: u64,
    busy: Duration,
}

/// Runs `queries` striped across `threads` workers sharing `engine`,
/// and renders the throughput/latency/phase report.
fn run_batch(engine: &XRefineEngine, queries: &[String], threads: usize) -> String {
    let threads = threads.max(1);
    let wall_start = Instant::now();
    let mut tallies: Vec<ThreadTally> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            handles.push(s.spawn(move || {
                let mut tally = ThreadTally::default();
                let t0 = Instant::now();
                for q in queries.iter().skip(tid).step_by(threads) {
                    let q_start = Instant::now();
                    match engine.answer_timed(q) {
                        Ok((outcome, timings)) => {
                            tally.answered += 1;
                            tally.latencies.push(q_start.elapsed());
                            tally.phases.accumulate(&timings);
                            tally.advances += outcome.advances;
                            tally.random_accesses += outcome.random_accesses;
                        }
                        Err(e) => {
                            tally.failures.push((q.clone(), e.to_string()));
                        }
                    }
                }
                tally.busy = t0.elapsed();
                tally
            }));
        }
        for h in handles {
            tallies.push(h.join().expect("batch worker panicked"));
        }
    });
    let wall = wall_start.elapsed();
    render_batch_report(&tallies, wall, engine.index().cache_stats())
}

fn render_batch_report(
    tallies: &[ThreadTally],
    wall: Duration,
    cache: Option<invindex::CacheStats>,
) -> String {
    use std::fmt::Write as _;
    let answered: usize = tallies.iter().map(|t| t.answered).sum();
    let errors: usize = tallies.iter().map(|t| t.failures.len()).sum();
    // Failed queries burned the same wall clock as answered ones, so
    // `answered / wall` alone would overstate a partially-failing run:
    // report attempted and answered throughput side by side.
    let attempted = answered + errors;
    let mut latencies: Vec<Duration> = tallies
        .iter()
        .flat_map(|t| t.latencies.iter().copied())
        .collect();
    latencies.sort_unstable();
    let mut phases = PhaseTimings::default();
    for t in tallies {
        phases.accumulate(&t.phases);
    }
    let advances: u64 = tallies.iter().map(|t| t.advances).sum();
    let random: u64 = tallies.iter().map(|t| t.random_accesses).sum();

    let mut out = String::new();
    let wall_secs = wall.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "batch: {attempted} attempted ({answered} answered, {errors} failed), {} thread(s), \
         wall {:?}, {:.1} q/s attempted, {:.1} q/s answered",
        tallies.len(),
        wall,
        attempted as f64 / wall_secs,
        answered as f64 / wall_secs,
    );
    for (tid, t) in tallies.iter().enumerate() {
        let _ = writeln!(
            out,
            "  thread {tid}: {} answered, {} failed in {:?} ({:.1} q/s)",
            t.answered,
            t.failures.len(),
            t.busy,
            t.answered as f64 / t.busy.as_secs_f64().max(1e-9),
        );
    }
    let _ = writeln!(
        out,
        "latency: p50 {:?}  p90 {:?}  p99 {:?}  p999 {:?}  max {:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        percentile(&latencies, 0.999),
        latencies.last().copied().unwrap_or(Duration::ZERO),
    );
    let _ = writeln!(
        out,
        "phases (cpu, summed): rules {:?}  session {:?}  algorithm {:?}",
        phases.rules, phases.session, phases.algorithm,
    );
    let _ = writeln!(
        out,
        "cursors: {advances} advances, {random} random accesses"
    );
    if let Some(c) = cache {
        let _ = writeln!(
            out,
            "cache: {} hits, {} misses, {} decoded, {} evictions, {} bytes resident",
            c.hits, c.misses, c.lists_decoded, c.evictions, c.cached_bytes,
        );
    }
    // Failed queries, rendered once after the join so worker output
    // never interleaves with the report.
    if errors > 0 {
        let _ = writeln!(out, "failed queries:");
        for (tid, t) in tallies.iter().enumerate() {
            for (query, error) in &t.failures {
                let _ = writeln!(out, "  thread {tid}: \"{query}\": {error}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::KvStore;

    #[test]
    fn percentile_is_nearest_rank() {
        // The shared helper (crates/bench) computes true nearest rank:
        // ⌈q·n⌉, 1-based — so the even-length median of 1..=100 ms is
        // 50 ms, where the old `round((n−1)·q)` formula said 51 ms.
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 0.999), Duration::from_millis(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    /// A corrupt posting list must fail the query that touches it — and
    /// only that query. The engine (and so the REPL/batch loops) keeps
    /// serving keywords whose lists are intact.
    #[test]
    fn corrupt_list_fails_one_query_not_the_engine() {
        let doc = Arc::new(xmldom::fixtures::figure1());
        let index = invindex::Index::build(Arc::clone(&doc));
        let mut store = kvstore::MemKv::new();
        invindex::persist::persist(&index, &mut store).unwrap();
        // clobber the "2003" posting list in place (key: L/<id be32>)
        let kid = index.vocabulary().get("2003").unwrap();
        let mut key = b"L/".to_vec();
        key.extend_from_slice(&kid.0.to_be_bytes());
        store.put(&key, b"\xff\xff not a posting list").unwrap();

        let kv = invindex::KvBackedIndex::open(Box::new(store)).unwrap();
        let engine = XRefineEngine::from_reader(Arc::new(kv), EngineConfig::default());
        assert!(engine.answer("2003").is_err(), "corruption must surface");
        // untouched lists still serve after the failure
        let ok = engine.answer("john fishing").unwrap();
        assert!(ok.original_ok);
    }

    #[test]
    fn scrub_passes_a_fresh_store_and_flags_a_flipped_byte() {
        let dir = std::env::temp_dir().join(format!("xref_scrub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("fig1.db");
        let _ = std::fs::remove_file(&store_path);
        let spath = store_path.to_str().unwrap();

        build_store(
            "figure1",
            spath,
            IngestMode::Dom,
            1,
            invindex::persist::FORMAT_VERSION,
        )
        .unwrap();
        assert!(scrub_store(spath).unwrap(), "fresh store must scrub clean");

        // At-rest bit rot in the first data page: scrub must fail.
        let mut bytes = std::fs::read(&store_path).unwrap();
        bytes[kvstore::PHYS_PAGE_SIZE + 700] ^= 0xFF;
        std::fs::write(&store_path, &bytes).unwrap();
        assert!(!scrub_store(spath).unwrap(), "damage must be reported");

        assert!(scrub_store("/no/such/store.db").is_err());
    }

    #[test]
    fn stream_and_dom_ingest_write_identical_stores() {
        let dir = std::env::temp_dir().join(format!("xref_ingest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dom_path = dir.join("dom.db");
        let stream_path = dir.join("stream.db");
        let _ = std::fs::remove_file(&dom_path);
        let _ = std::fs::remove_file(&stream_path);

        build_store(
            "figure1",
            dom_path.to_str().unwrap(),
            IngestMode::Dom,
            1,
            invindex::persist::FORMAT_VERSION,
        )
        .unwrap();
        build_store(
            "figure1",
            stream_path.to_str().unwrap(),
            IngestMode::Stream,
            3,
            invindex::persist::FORMAT_VERSION,
        )
        .unwrap();
        assert_eq!(
            std::fs::read(&dom_path).unwrap(),
            std::fs::read(&stream_path).unwrap(),
            "ingest modes must persist byte-identical stores"
        );
        assert!(scrub_store(stream_path.to_str().unwrap()).unwrap());
    }

    /// `index --format` writes the requested store version; both
    /// versions scrub clean and serve queries through `from_store`.
    #[test]
    fn index_format_flag_selects_store_version() {
        let dir = std::env::temp_dir().join(format!("xref_format_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, version) in [
            ("v3", invindex::persist::V3_FORMAT_VERSION),
            ("v4", invindex::persist::FORMAT_VERSION),
        ] {
            let path = dir.join(format!("fig1_{name}.db"));
            let _ = std::fs::remove_file(&path);
            let spath = path.to_str().unwrap();
            build_store("figure1", spath, IngestMode::Dom, 1, version).unwrap();

            let kv = kvstore::DiskKv::open(&path).unwrap();
            assert_eq!(
                kv.get(b"M/version").unwrap().as_deref(),
                Some([version as u8].as_slice()),
                "--format {name} wrote the wrong store version"
            );
            drop(kv);
            assert!(scrub_store(spath).unwrap(), "{name} store must scrub clean");

            let engine = XRefineEngine::from_store(&path, EngineConfig::default())
                .unwrap_or_else(|e| panic!("cannot serve {name} store: {e}"));
            assert!(engine.answer("john fishing").unwrap().original_ok);
        }
    }

    #[test]
    fn batch_reports_and_survives_query_errors() {
        let engine = XRefineEngine::from_document(
            Arc::new(xmldom::fixtures::figure1()),
            EngineConfig::default(),
        );
        let queries: Vec<String> = ["xml 2003", "john fishing", "database publication"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for threads in [1, 4] {
            let report = run_batch(&engine, &queries, threads);
            assert!(report.contains("3 answered, 0 failed"), "{report}");
            assert!(report.contains(&format!("{threads} thread(s)")), "{report}");
            assert!(report.contains("latency: p50"), "{report}");
        }
    }
}

//! Property test of `bench::percentile` against a brute-force
//! nearest-rank reference (hand-rolled xorshift RNG — the offline
//! toolchain has no proptest; the loop below covers the same ground).
//!
//! The reference derives the answer by *counting*, not indexing: the
//! q-th nearest-rank percentile is the smallest element `v` such that
//! at least `⌈q·n⌉` elements are ≤ `v`. Quantiles are drawn from the
//! grid k/1024 so `q·n` is exact in f64 and the integer reference
//! `⌈k·n/1024⌉` is bit-for-bit the rank the implementation must pick —
//! no floating-point slack to hide an off-by-one (the bug this guards
//! against: the old helper computed `round((n−1)·q)`, reporting the
//! 51st of 100 values as the median).

use bench::{percentile, percentile_of};
use std::time::Duration;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, good enough for case generation.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Counting-based nearest-rank reference for `q = k/1024`.
fn reference(sorted: &[Duration], k: u64) -> Duration {
    let n = sorted.len() as u64;
    if n == 0 {
        return Duration::ZERO;
    }
    for &v in sorted {
        let at_most_v = sorted.iter().filter(|&&x| x <= v).count() as u64;
        // rank(v) ≥ ⌈k·n/1024⌉  ⟺  rank(v)·1024 ≥ k·n (integer exact),
        // with the rank-1 clamp for k = 0.
        if at_most_v * 1024 >= k * n {
            return v;
        }
    }
    *sorted.last().expect("n > 0")
}

#[test]
fn percentile_matches_counting_reference() {
    let mut rng = XorShift(0x5eed_cafe_f00d_d00d);
    for case in 0..2000 {
        let n = rng.below(200) as usize; // includes n = 0
        let mut vals: Vec<Duration> = (0..n)
            // Small value range forces heavy duplication — the regime
            // where rank definitions actually disagree.
            .map(|_| Duration::from_millis(rng.below(40)))
            .collect();
        vals.sort_unstable();
        let k = rng.below(1025); // q ∈ {0/1024 … 1024/1024}
        let q = k as f64 / 1024.0;

        let got = percentile(&vals, q);
        let want = reference(&vals, k);
        assert_eq!(
            got, want,
            "case {case}: n={n} k={k} q={q}: got {got:?}, reference {want:?}"
        );
        // The result is an element of the list (nearest-rank never
        // interpolates) — vacuous for n = 0 where both are ZERO.
        if n > 0 {
            assert!(vals.contains(&got), "case {case}: {got:?} not in input");
        }
    }
}

#[test]
fn percentile_is_monotone_in_q() {
    let mut rng = XorShift(0xdead_beef_1234_5678);
    for _ in 0..200 {
        let n = 1 + rng.below(100) as usize;
        let mut vals: Vec<Duration> = (0..n)
            .map(|_| Duration::from_micros(rng.below(10_000)))
            .collect();
        vals.sort_unstable();
        let mut prev = Duration::ZERO;
        for k in 0..=64 {
            let v = percentile(&vals, k as f64 / 64.0);
            assert!(v >= prev, "percentile decreased between quantiles");
            prev = v;
        }
        assert_eq!(percentile(&vals, 1.0), *vals.last().expect("n > 0"));
        assert_eq!(percentile(&vals, 0.0), *vals.first().expect("n > 0"));
    }
}

#[test]
fn percentile_of_agrees_with_presorted() {
    let mut rng = XorShift(0x0123_4567_89ab_cdef);
    for _ in 0..200 {
        let n = rng.below(64) as usize;
        let unsorted: Vec<Duration> = (0..n)
            .map(|_| Duration::from_millis(rng.below(500)))
            .collect();
        let mut sorted = unsorted.clone();
        sorted.sort_unstable();
        for k in [0, 13, 512, 1000, 1024] {
            let q = k as f64 / 1024.0;
            assert_eq!(percentile_of(&unsorted, q), percentile(&sorted, q));
        }
    }
}

//! Streaming index construction over the zero-copy scanner.
//!
//! [`build_streaming`] is the corpus-scale ingest path: instead of
//! parsing a DOM and walking it (`Index::build`), it drives
//! [`xmldom::scan_with`] over the borrowed XML buffer and builds the
//! index from span events in four phases:
//!
//! 1. **Scan** (sequential): one pass collects, per element, its name
//!    and attribute-region spans plus its depth, and the spans of the
//!    text segments it owns. Nothing is decoded or copied — the phase
//!    is delimiter scanning plus two flat `Vec` pushes per element.
//! 2. **Tokenize** (parallel): the element array is cut into contiguous
//!    chunks at element boundaries, balanced by the byte weight each
//!    element contributes (tag + attributes + owned text). Workers
//!    decode entities, assemble each element's joined text, and count
//!    tokens against a *chunk-local* vocabulary, recording per-element
//!    token counts in first-encounter order (tag, then text, then
//!    attributes — the reference builder's traversal order).
//! 3. **Merge** (sequential, pipelined with 2): workers feed finished
//!    chunks through a channel bounded at `threads` entries and the
//!    merge consumes them strictly in range order, so only a bounded
//!    window of tokenized output is ever resident. Each chunk is
//!    replayed in document order through a [`DocumentBuilder`], which
//!    assigns exactly the Dewey labels and node types the DOM path
//!    would (the chunk boundary needs no special stitching: the
//!    builder's open-element stack *is* the prefix Dewey state carried
//!    across chunks). Chunk-local token ids are rebound to the global
//!    vocabulary lazily; because chunks are consumed in document order
//!    and per-element counts are in first-encounter order, the global
//!    interner sees first occurrences in exactly the sequential order —
//!    keyword ids, posting lists and therefore persisted store bytes
//!    are identical to the DOM path regardless of thread count.
//! 4. **Frequency tables** (parallel): `tf(k, T)` and `f^T_k` in one
//!    fused ancestor walk per posting via the shared [`crate::dfpass`],
//!    consuming the per-posting occurrence counts recorded by the merge.
//!
//! Peak memory is the input buffer plus the span arrays (dropped before
//! phase 4) plus the bounded chunk window plus the index under
//! construction — no DOM text/attribute duplication, and the scanner
//! itself keeps only its bounded open-tag stack
//! ([`xmldom::MAX_SCAN_DEPTH`]).
//!
//! Each phase reports its wall time to an `obs` histogram
//! (`invindex_ingest_{scan,tokenize,merge,df}_nanos`).

use crate::dfpass;
use crate::index::Index;
use crate::postings::{Posting, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use xmldom::scan::{scan_with, AttrIter, ScanSink, Span};
use xmldom::{decode_text, for_each_token, DocumentBuilder, ScanError};

/// Multiply-xor hashing (the FxHash construction) for the chunk-local
/// token maps: they see ~one lookup per token occurrence, are private to
/// a worker, and never face adversarial keys, so the default hasher's
/// DoS resistance buys nothing here.
#[derive(Clone, Copy, Default)]
struct FxBuildHasher;

struct FxHasher {
    hash: u64,
}

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            if let Ok(word) = <[u8; 8]>::try_from(chunk) {
                self.add(u64::from_le_bytes(word));
            }
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// One element as collected by the scan phase.
#[derive(Debug, Clone, Copy)]
struct RawNode {
    name: Span,
    attrs: Span,
    /// 1-based depth (the root element has depth 1).
    depth: u32,
}

/// One text segment, attributed to the innermost open element.
#[derive(Debug, Clone, Copy)]
struct RawText {
    owner: u32,
    span: Span,
    cdata: bool,
}

#[derive(Default)]
struct Collector {
    nodes: Vec<RawNode>,
    texts: Vec<RawText>,
    stack: Vec<u32>,
}

impl ScanSink for Collector {
    fn start_tag(&mut self, name: Span, attrs: Span) {
        let id = self.nodes.len() as u32;
        self.nodes.push(RawNode {
            name,
            attrs,
            depth: self.stack.len() as u32 + 1,
        });
        self.stack.push(id);
    }

    fn end_tag(&mut self) {
        self.stack.pop();
    }

    fn text(&mut self, span: Span, cdata: bool) {
        if let Some(&owner) = self.stack.last() {
            self.texts.push(RawText { owner, span, cdata });
        }
    }
}

/// One tokenized element: token counts against the chunk-local
/// vocabulary (first-encounter order), decoded attributes, and the
/// joined text content.
struct NodeOut {
    counts: Vec<(u32, u64)>,
    attrs: Vec<(String, String)>,
    text: String,
}

/// One worker's output: its local vocabulary in first-encounter order
/// plus one [`NodeOut`] per element of its range.
struct ChunkOut {
    vocab: Vec<String>,
    nodes: Vec<NodeOut>,
}

/// Sequential merge state threaded through the chunk pipeline: replays
/// each chunk's structure into the shared [`DocumentBuilder`] and binds
/// chunk-local keyword ids to the global interner in first-encounter
/// order, so the result is independent of how the ranges were cut.
struct MergeState<'a> {
    nodes: &'a [RawNode],
    builder: DocumentBuilder,
    vocab: KeywordTable,
    lists: Vec<PostingList>,
    /// Per-posting occurrence counts, parallel to `lists` — the fused
    /// tf/df pass consumes them, keeping the hash-heavy frequency work
    /// out of this sequential loop.
    counts_flat: Vec<Vec<u64>>,
    n_nodes: Vec<u64>,
    open_depth: usize,
    global: usize,
}

impl<'a> MergeState<'a> {
    fn new(nodes: &'a [RawNode]) -> Self {
        MergeState {
            nodes,
            builder: DocumentBuilder::new(),
            vocab: KeywordTable::new(),
            lists: Vec::new(),
            counts_flat: Vec::new(),
            n_nodes: Vec::new(),
            open_depth: 0,
            global: 0,
        }
    }

    fn consume(&mut self, xml: &str, chunk: ChunkOut) {
        // Chunk-local keyword id -> global id, bound on first use so the
        // global interner still sees strings in document-order
        // first-encounter order.
        let mut memo: Vec<Option<KeywordId>> = vec![None; chunk.vocab.len()];
        for out in chunk.nodes {
            let raw = &self.nodes[self.global];
            self.global += 1;
            while self.open_depth >= raw.depth as usize {
                self.builder.close_element();
                self.open_depth -= 1;
            }
            let id = self.builder.open_element(raw.name.slice(xml));
            self.open_depth += 1;
            for (name, value) in out.attrs {
                self.builder.attribute_owned(name, value);
            }
            self.builder.text_owned(out.text);
            let node = self.builder.node(id);
            let node_type = node.node_type;
            let dewey = node.dewey.clone();
            if self.n_nodes.len() <= node_type.0 as usize {
                self.n_nodes.resize(node_type.0 as usize + 1, 0);
            }
            self.n_nodes[node_type.0 as usize] += 1;
            for &(local, c) in &out.counts {
                let k = match memo[local as usize] {
                    Some(k) => k,
                    None => {
                        let k = self.vocab.intern(&chunk.vocab[local as usize]);
                        memo[local as usize] = Some(k);
                        k
                    }
                };
                while self.lists.len() <= k.0 as usize {
                    self.lists.push(PostingList::new());
                    self.counts_flat.push(Vec::new());
                }
                self.lists[k.0 as usize].push(Posting::new(dewey.clone(), node_type));
                self.counts_flat[k.0 as usize].push(c);
            }
        }
    }
}

/// Builds the index directly from XML text via the streaming scanner,
/// using up to `threads` tokenizer workers (`<= 1` runs inline).
///
/// Produces an index identical to `Index::build(parse_document(xml))` —
/// including keyword ids and persisted bytes — for every document the
/// scanner accepts; malformed input returns the scanner's structured
/// error instead of a DOM parse error.
pub fn build_streaming(xml: &str, threads: usize) -> Result<Index, ScanError> {
    // ---- phase 1: scan -----------------------------------------------
    let t_scan = Instant::now();
    let mut collector = Collector::default();
    scan_with(xml, &mut collector)?;
    let nodes = collector.nodes;
    let mut texts = collector.texts;
    // Group each element's text segments (they are not contiguous in
    // document order: `<r><a>x</a>tail</r>` interleaves owners). The
    // stable sort keeps each owner's segments in document order.
    texts.sort_by_key(|t| t.owner);
    let mut text_start = vec![0usize; nodes.len() + 1];
    for t in &texts {
        text_start[t.owner as usize + 1] += 1;
    }
    for i in 1..text_start.len() {
        text_start[i] += text_start[i - 1];
    }
    obs::histogram!("invindex_ingest_scan_nanos").observe_duration(t_scan.elapsed());

    // ---- phases 2+3: tokenize (parallel) into merge (sequential) -----
    //
    // Chunks flow through a channel bounded at `threads` entries and are
    // merged strictly in range order, so at most ~2x`threads` chunks of
    // tokenized output are ever resident — the merge keeps up with the
    // workers instead of the whole corpus's token stream materialising
    // first.
    let t_pipe = Instant::now();
    // ~4 MB of source per chunk keeps the in-flight window small while
    // still amortising per-chunk vocabulary duplication.
    const CHUNK_TARGET_BYTES: usize = 4 << 20;
    let parts = (xml.len() / CHUNK_TARGET_BYTES + 1).max(threads.max(1));
    let ranges = chunk_ranges(&nodes, &texts, &text_start, parts);
    let mut merge = MergeState::new(&nodes);
    let mut merge_spent = std::time::Duration::ZERO;
    if threads <= 1 {
        for &(lo, hi) in &ranges {
            let chunk = tokenize_range(xml, &nodes, &texts, &text_start, lo, hi);
            let t_merge = Instant::now();
            merge.consume(xml, chunk);
            merge_spent += t_merge.elapsed();
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, ChunkOut)>(threads);
            let (ranges, next) = (&ranges, &next);
            let (nodes, texts, text_start) = (&nodes, &texts, &text_start);
            for _ in 0..threads.min(ranges.len()) {
                let tx = tx.clone();
                s.spawn(move |_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(lo, hi)) = ranges.get(i) else {
                        break;
                    };
                    let chunk = tokenize_range(xml, nodes, texts, text_start, lo, hi);
                    if tx.send((i, chunk)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Merge in range order; out-of-order arrivals wait in
            // `pending` (bounded by the channel + worker count).
            let mut pending: std::collections::BTreeMap<usize, ChunkOut> =
                std::collections::BTreeMap::new();
            let mut expect = 0usize;
            for (i, chunk) in rx {
                pending.insert(i, chunk);
                while let Some(chunk) = pending.remove(&expect) {
                    expect += 1;
                    let t_merge = Instant::now();
                    merge.consume(xml, chunk);
                    merge_spent += t_merge.elapsed();
                }
            }
        })
        .expect("crossbeam scope");
    }
    let MergeState {
        mut builder,
        vocab,
        lists,
        counts_flat,
        mut n_nodes,
        mut open_depth,
        ..
    } = merge;
    while open_depth > 0 {
        builder.close_element();
        open_depth -= 1;
    }
    let doc = Arc::new(builder.finish());
    drop(texts);
    drop(nodes);
    drop(text_start);
    obs::histogram!("invindex_ingest_tokenize_nanos")
        .observe_duration(t_pipe.elapsed().saturating_sub(merge_spent));
    obs::histogram!("invindex_ingest_merge_nanos").observe_duration(merge_spent);

    // ---- phase 4: tf(k,T) and f^T_k (parallel) -----------------------
    let t_df = Instant::now();
    let (tf, df) = dfpass::compute_tf_df(&doc, &lists, Some(&counts_flat), threads);
    let num_types = doc.node_types().len();
    n_nodes.resize(num_types, 0);
    let mut distinct = vec![0u64; num_types];
    for &(t, _) in df.keys() {
        distinct[t.0 as usize] += 1;
    }
    let stats = TypeStats::set_from_parts(n_nodes, distinct, tf, df);
    obs::histogram!("invindex_ingest_df_nanos").observe_duration(t_df.elapsed());

    Ok(Index::from_parts(doc, vocab, lists, stats))
}

/// Cuts `[0, nodes.len())` into at most `parts` contiguous ranges with
/// roughly equal byte weight (tag + attribute region + owned text), so
/// text-heavy regions don't serialise the tokenize phase.
fn chunk_ranges(
    nodes: &[RawNode],
    texts: &[RawText],
    text_start: &[usize],
    parts: usize,
) -> Vec<(usize, usize)> {
    if nodes.is_empty() {
        return Vec::new();
    }
    if parts <= 1 {
        return vec![(0, nodes.len())];
    }
    let weight = |i: usize| -> u64 {
        let n = &nodes[i];
        let owned: usize = texts
            .get(text_start[i]..text_start[i + 1])
            .unwrap_or(&[])
            .iter()
            .map(|t| t.span.len())
            .sum();
        (n.name.len() + n.attrs.len() + owned) as u64 + 8
    };
    let total: u64 = (0..nodes.len()).map(weight).sum();
    let target = total.div_ceil(parts as u64).max(1);
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0usize;
    let mut acc = 0u64;
    for i in 0..nodes.len() {
        acc += weight(i);
        if acc >= target && ranges.len() + 1 < parts {
            ranges.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
        }
    }
    if lo < nodes.len() {
        ranges.push((lo, nodes.len()));
    }
    ranges
}

/// Tokenizes elements `[lo, hi)`: decodes attributes and text, counts
/// tokens in the reference builder's order (tag, text, attributes)
/// against a chunk-local first-encounter vocabulary.
fn tokenize_range(
    xml: &str,
    nodes: &[RawNode],
    texts: &[RawText],
    text_start: &[usize],
    lo: usize,
    hi: usize,
) -> ChunkOut {
    let mut vocab: Vec<String> = Vec::new();
    let mut seen: FxMap<String, u32> = FxMap::default();
    let mut out_nodes: Vec<NodeOut> = Vec::with_capacity(hi - lo);
    let mut node_seen: FxMap<u32, usize> = FxMap::default();
    let mut scratch = String::new();
    for (i, raw) in nodes.iter().enumerate().take(hi).skip(lo) {
        let mut counts: Vec<(u32, u64)> = Vec::new();
        node_seen.clear();
        // Tokens arrive as borrowed slices; only a first occurrence in
        // this chunk allocates (into the local vocabulary).
        let mut bump = |tok: &str, counts: &mut Vec<(u32, u64)>| {
            let local = match seen.get(tok) {
                Some(&l) => l,
                None => {
                    let l = vocab.len() as u32;
                    seen.insert(tok.to_string(), l);
                    vocab.push(tok.to_string());
                    l
                }
            };
            match node_seen.get(&local) {
                Some(&at) => counts[at].1 += 1,
                None => {
                    node_seen.insert(local, counts.len());
                    counts.push((local, 1));
                }
            }
        };

        let tag = raw.name.slice(xml);
        for_each_token(tag, &mut scratch, |tok| bump(tok, &mut counts));

        // Joined text: per segment, CDATA is trimmed verbatim while
        // character data is entity-decoded then trimmed; empty segments
        // drop and the rest join with a single space — exactly the
        // DocumentBuilder::text accumulation the parser performs.
        let mut text = String::new();
        for t in texts.get(text_start[i]..text_start[i + 1]).unwrap_or(&[]) {
            let raw_seg = t.span.slice(xml);
            let decoded;
            let seg = if t.cdata {
                raw_seg.trim()
            } else {
                decoded = decode_text(raw_seg).expect("scanner validated entities");
                decoded.trim()
            };
            if seg.is_empty() {
                continue;
            }
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(seg);
        }
        for_each_token(&text, &mut scratch, |tok| bump(tok, &mut counts));

        let mut attrs: Vec<(String, String)> = Vec::new();
        for (name, raw_value) in AttrIter::new(xml, raw.attrs) {
            let value = decode_text(raw_value).expect("scanner validated entities");
            for_each_token(name, &mut scratch, |tok| bump(tok, &mut counts));
            for_each_token(&value, &mut scratch, |tok| bump(tok, &mut counts));
            attrs.push((name.to_string(), value.into_owned()));
        }

        out_nodes.push(NodeOut {
            counts,
            attrs,
            text,
        });
    }
    ChunkOut {
        vocab,
        nodes: out_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::fixtures::figure1;
    use xmldom::parse_document;

    fn assert_equivalent(xml: &str, threads: usize) {
        let doc = Arc::new(parse_document(xml).expect("parse"));
        let seq = Index::build(Arc::clone(&doc));
        let stream = build_streaming(xml, threads).expect("stream");
        assert_eq!(seq.vocabulary().len(), stream.vocabulary().len());
        for (k, text) in seq.vocabulary().iter() {
            assert_eq!(
                stream.vocabulary().get(text),
                Some(k),
                "{text} interned differently with {threads} threads"
            );
            assert_eq!(
                seq.list_by_id(k),
                stream.list_by_id(k),
                "lists differ for {text}"
            );
            for t in doc.node_types().iter() {
                assert_eq!(seq.stats().tf(t, k), stream.stats().tf(t, k), "tf {text}");
                assert_eq!(seq.stats().df(t, k), stream.stats().df(t, k), "df {text}");
            }
        }
        for t in doc.node_types().iter() {
            assert_eq!(seq.stats().n_nodes(t), stream.stats().n_nodes(t));
            assert_eq!(
                seq.stats().distinct_keywords(t),
                stream.stats().distinct_keywords(t)
            );
        }
        // Same rendered document too (attributes, text joins, labels).
        assert_eq!(doc.to_xml(), stream.document().to_xml());
    }

    #[test]
    fn streaming_matches_dom_on_figure1() {
        let xml = figure1().to_xml();
        for threads in [1, 2, 3, 8] {
            assert_equivalent(&xml, threads);
        }
    }

    #[test]
    fn streaming_handles_mixed_content_and_entities() {
        let xml = "<r a=\"x &amp; y\"><p>one <b>two</b> three &#65;</p><![CDATA[ignored?]]>\
                   <q>  </q><p/>tail</r>";
        // Note: CDATA outside any element would be rejected; this one is
        // inside <r>, interleaved with element children.
        for threads in [1, 4] {
            assert_equivalent(xml, threads);
        }
    }

    #[test]
    fn streaming_rejects_malformed_input() {
        for bad in ["", "<a><b></a>", "<a>&nope;</a>", "plain text"] {
            assert!(build_streaming(bad, 2).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn chunking_is_thread_count_invariant() {
        // A document whose text mass is concentrated in one element, so
        // byte-balanced chunking actually produces uneven node ranges.
        let mut xml = String::from("<r>");
        for i in 0..50 {
            xml.push_str(&format!("<e>word{i}</e>"));
        }
        xml.push_str("<big>");
        xml.push_str(&"lorem ipsum dolor ".repeat(200));
        xml.push_str("</big></r>");
        for threads in [1, 2, 5, 8] {
            assert_equivalent(&xml, threads);
        }
    }
}

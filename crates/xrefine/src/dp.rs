//! The dynamic program of §V: `getOptimalRQ`.
//!
//! Given the original query `S = Q`, a set `T` of keywords known to exist
//! (in the whole document, in one partition, or in one subtree — the
//! algorithms instantiate `T` differently), and the pertinent rule set
//! `R`, find the refined query `RQ ⊆ T` minimizing `dSim(Q, RQ)`
//! (Formula 11), together with a ranked list of runner-up candidates (the
//! "side product" the paper reuses for Top-K refinement — explicitly an
//! *approximate* Top-2K list, §VI-B).
//!
//! The recurrence over prefixes `S[1..i]` has three options:
//!
//! 1. `k_i ∈ T` — keep it, cost unchanged;
//! 2. delete `k_i` at the deletion cost;
//! 3. apply a rule whose LHS is the contiguous query segment ending at
//!    `i` and whose RHS exists entirely within `T`, at cost `ds_r`.
//!
//! We run a *k-best* variant: each prefix keeps up to `cap` cheapest
//! states (distinct keyword sets), so the optimum is exact and the
//! runner-up list is best-effort within `cap`.

use crate::query::{Query, RqCandidate};
use lexicon::{RefineOp, RuleSet};
use std::collections::BTreeSet;

/// One step of a refinement sequence (Definition 3.6). A candidate's step
/// list replays the exact derivation `Q -> RQ` the dynamic program chose.
#[derive(Debug, Clone, PartialEq)]
pub enum AppliedOp {
    /// The keyword exists in `T` and was kept unchanged.
    Kept(String),
    /// The keyword was deleted (at the rule set's deletion cost).
    Deleted(String),
    /// A refinement rule rewrote `lhs` into `rhs`.
    Rule {
        lhs: Vec<String>,
        rhs: Vec<String>,
        op: RefineOp,
        cost: f64,
    },
}

impl std::fmt::Display for AppliedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppliedOp::Kept(k) => write!(f, "keep \"{k}\""),
            AppliedOp::Deleted(k) => write!(f, "delete \"{k}\""),
            AppliedOp::Rule { lhs, rhs, op, cost } => write!(
                f,
                "{op} \"{}\" -> \"{}\" (ds {cost})",
                lhs.join(" "),
                rhs.join(" ")
            ),
        }
    }
}

/// Result of the dynamic program.
#[derive(Debug, Clone)]
pub struct DpResult {
    /// Candidates sorted by dissimilarity (ties by keyword set); the first
    /// is the optimal RQ. Empty only if every candidate degenerates to the
    /// empty keyword set.
    pub candidates: Vec<RqCandidate>,
    /// `C[i]` of Formula 11: minimum dissimilarity for each query prefix
    /// (including the empty prefix `C\[0\] = 0`). For the Figure 2 trace.
    pub prefix_costs: Vec<f64>,
}

#[derive(Debug, Clone)]
struct State {
    cost: f64,
    kws: BTreeSet<String>,
    ops: Vec<AppliedOp>,
}

/// `getOptimalRQ` extended to the Top-`m` variant (`getTopOptimalRQ`).
///
/// `available` answers `k ∈ T`. `m` is the number of candidates to return;
/// the internal beam keeps `4·m` states per prefix to cushion the
/// approximation.
pub fn get_top_optimal_rqs(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
    m: usize,
) -> DpResult {
    run_dp(query, available, rules, m).0
}

/// Internal: final-layer states (for [`explain_rq`]).
fn get_top_optimal_rqs_with_states(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
    m: usize,
) -> Vec<State> {
    run_dp(query, available, rules, m).1
}

fn run_dp(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
    m: usize,
) -> (DpResult, Vec<State>) {
    obs::counter!("xrefine_dp_calls_total").inc();
    obs::trace::count("dp.calls", 1);
    let cap = (4 * m).max(8);
    let s = query.keywords();
    let mut layers: Vec<Vec<State>> = Vec::with_capacity(s.len() + 1);
    layers.push(vec![State {
        cost: 0.0,
        kws: BTreeSet::new(),
        ops: Vec::new(),
    }]);

    for i in 1..=s.len() {
        let ki = &s[i - 1];
        let mut next: Vec<State> = Vec::new();

        // Option 1: keep k_i when it exists in T.
        if available(ki) {
            for st in &layers[i - 1] {
                let mut kws = st.kws.clone();
                kws.insert(ki.clone());
                let mut ops = st.ops.clone();
                ops.push(AppliedOp::Kept(ki.clone()));
                next.push(State {
                    cost: st.cost,
                    kws,
                    ops,
                });
            }
        }
        // Option 2: delete k_i.
        for st in &layers[i - 1] {
            let mut ops = st.ops.clone();
            ops.push(AppliedOp::Deleted(ki.clone()));
            next.push(State {
                cost: st.cost + rules.deletion_cost(),
                kws: st.kws.clone(),
                ops,
            });
        }
        // Option 3: rules whose LHS is the query segment ending at i.
        for (_, rule) in rules.rules_ending_with(ki) {
            let l = rule.lhs.len();
            if l > i {
                continue;
            }
            if s[i - l..i] != rule.lhs[..] {
                continue;
            }
            if !rule.rhs.iter().all(|w| available(w)) {
                continue;
            }
            for st in &layers[i - l] {
                let mut kws = st.kws.clone();
                kws.extend(rule.rhs.iter().cloned());
                let mut ops = st.ops.clone();
                ops.push(AppliedOp::Rule {
                    lhs: rule.lhs.clone(),
                    rhs: rule.rhs.clone(),
                    op: rule.op,
                    cost: rule.dissimilarity,
                });
                next.push(State {
                    cost: st.cost + rule.dissimilarity,
                    kws,
                    ops,
                });
            }
        }

        prune(&mut next, cap);
        layers.push(next);
    }

    let prefix_costs = layers
        .iter()
        .map(|layer| layer.iter().map(|st| st.cost).fold(f64::INFINITY, f64::min))
        .collect();

    let mut candidates: Vec<RqCandidate> = layers
        .last()
        .expect("at least the empty layer")
        .iter()
        .filter(|st| !st.kws.is_empty())
        .map(|st| RqCandidate::new(st.kws.iter().cloned().collect(), st.cost))
        .collect();
    candidates.sort_by(|a, b| {
        a.dissimilarity
            .partial_cmp(&b.dissimilarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.keywords.cmp(&b.keywords))
    });
    candidates.truncate(m);
    let final_states = layers.pop().expect("final layer");
    (
        DpResult {
            candidates,
            prefix_costs,
        },
        final_states,
    )
}

/// Explains how `target` (a refined-query keyword set) derives from the
/// query: the cheapest refinement sequence reaching exactly that keyword
/// set, or `None` if the DP (with a widened beam) cannot reach it.
pub fn explain_rq(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
    target: &[String],
) -> Option<(f64, Vec<AppliedOp>)> {
    let want: BTreeSet<&str> = target.iter().map(|s| s.as_str()).collect();
    let result = get_top_optimal_rqs_with_states(query, available, rules, 64);
    result
        .into_iter()
        .find(|st| st.kws.iter().map(|s| s.as_str()).collect::<BTreeSet<_>>() == want)
        .map(|st| (st.cost, st.ops))
}

/// Convenience: just the optimal RQ (`getOptimalRQ` proper).
pub fn get_optimal_rq(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
) -> Option<RqCandidate> {
    get_top_optimal_rqs(query, available, rules, 1)
        .candidates
        .into_iter()
        .next()
}

/// Keeps the `cap` cheapest states with distinct keyword sets (the
/// cheapest cost per set).
fn prune(states: &mut Vec<State>, cap: usize) {
    states.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.kws.cmp(&b.kws))
    });
    let mut seen: Vec<&BTreeSet<String>> = Vec::new();
    let mut keep = vec![false; states.len()];
    for (i, st) in states.iter().enumerate() {
        if seen.len() >= cap {
            break;
        }
        if seen.iter().any(|s| **s == st.kws) {
            continue;
        }
        keep[i] = true;
        seen.push(&st.kws);
    }
    let mut i = 0;
    states.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

/// Brute-force reference for `dSim`: enumerates every refinement sequence
/// (keep / delete / rule per position) without pruning and returns the
/// cheapest cost per distinct RQ keyword set, sorted. Exponential — test
/// use only.
pub fn brute_force_rqs(
    query: &Query,
    available: &dyn Fn(&str) -> bool,
    rules: &RuleSet,
) -> Vec<RqCandidate> {
    use std::collections::HashMap;
    let s = query.keywords();
    let mut best: HashMap<Vec<String>, f64> = HashMap::new();

    fn recurse(
        s: &[String],
        i: usize,
        cost: f64,
        kws: &mut BTreeSet<String>,
        available: &dyn Fn(&str) -> bool,
        rules: &RuleSet,
        best: &mut std::collections::HashMap<Vec<String>, f64>,
    ) {
        if i == s.len() {
            if !kws.is_empty() {
                let key: Vec<String> = kws.iter().cloned().collect();
                let e = best.entry(key).or_insert(f64::INFINITY);
                if cost < *e {
                    *e = cost;
                }
            }
            return;
        }
        let ki = &s[i];
        // keep
        if available(ki) {
            let inserted = kws.insert(ki.clone());
            recurse(s, i + 1, cost, kws, available, rules, best);
            if inserted {
                kws.remove(ki);
            }
        }
        // delete
        recurse(
            s,
            i + 1,
            cost + rules.deletion_cost(),
            kws,
            available,
            rules,
            best,
        );
        // rules: LHS starts at i
        for (_, rule) in rules.iter() {
            let l = rule.lhs.len();
            if i + l > s.len() || s[i..i + l] != rule.lhs[..] {
                continue;
            }
            if !rule.rhs.iter().all(|w| available(w)) {
                continue;
            }
            let added: Vec<String> = rule
                .rhs
                .iter()
                .filter(|w| kws.insert((*w).clone()))
                .cloned()
                .collect();
            recurse(
                s,
                i + l,
                cost + rule.dissimilarity,
                kws,
                available,
                rules,
                best,
            );
            for w in added {
                kws.remove(&w);
            }
        }
    }

    let mut kws = BTreeSet::new();
    recurse(s, 0, 0.0, &mut kws, available, rules, &mut best);
    let mut out: Vec<RqCandidate> = best
        .into_iter()
        .map(|(k, c)| RqCandidate::new(k, c))
        .collect();
    out.sort_by(|a, b| {
        a.dissimilarity
            .partial_cmp(&b.dissimilarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.keywords.cmp(&b.keywords))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lexicon::{RefineOp, Rule, RuleSet, RuleSource};
    use std::collections::HashSet;

    fn avail(words: &[&str]) -> impl Fn(&str) -> bool {
        let set: HashSet<String> = words.iter().map(|s| s.to_string()).collect();
        move |w: &str| set.contains(w)
    }

    /// The paper's Example 3 / Figure 2: Q = {WWW, article, machine,
    /// learn, ing}, T = {machine, inproceedings, learning, world, wide,
    /// web}, rules r3 (article→inproceedings), r4 (learn,ing→learning),
    /// r6 (www→world wide web), deletion cost 2.
    fn example3() -> (Query, RuleSet, Vec<&'static str>) {
        let q = Query::from_keywords(["www", "article", "machine", "learn", "ing"]);
        let mut rs = RuleSet::new().with_deletion_cost(2.0);
        rs.add(Rule::new(
            &["article"],
            &["inproceedings"],
            RefineOp::Substitute,
            RuleSource::Synonym,
            1.0,
        ));
        rs.add(Rule::new(
            &["learn", "ing"],
            &["learning"],
            RefineOp::Merge,
            RuleSource::Merging,
            1.0,
        ));
        rs.add(Rule::new(
            &["www"],
            &["world", "wide", "web"],
            RefineOp::Substitute,
            RuleSource::Acronym,
            1.0,
        ));
        let t = vec![
            "machine",
            "inproceedings",
            "learning",
            "world",
            "wide",
            "web",
        ];
        (q, rs, t)
    }

    #[test]
    fn example3_trace_matches_figure2() {
        let (q, rs, t) = example3();
        let a = avail(&t);
        let res = get_top_optimal_rqs(&q, &a, &rs, 4);
        // C = [0, 1, 2, 2, 4, 3]
        assert_eq!(res.prefix_costs, vec![0.0, 1.0, 2.0, 2.0, 4.0, 3.0]);
        let best = &res.candidates[0];
        assert_eq!(best.dissimilarity, 3.0);
        assert_eq!(
            best.keywords,
            [
                "inproceedings",
                "learning",
                "machine",
                "web",
                "wide",
                "world"
            ]
        );
    }

    #[test]
    fn keeps_original_query_at_zero_cost_when_fully_available() {
        let q = Query::from_keywords(["xml", "john"]);
        let rs = RuleSet::new();
        let a = avail(&["xml", "john"]);
        let best = get_optimal_rq(&q, &a, &rs).unwrap();
        assert_eq!(best.dissimilarity, 0.0);
        assert!(best.is_original(&q));
    }

    #[test]
    fn deletion_is_the_fallback_for_missing_keywords() {
        let q = Query::from_keywords(["xml", "ghost"]);
        let rs = RuleSet::new();
        let a = avail(&["xml"]);
        let best = get_optimal_rq(&q, &a, &rs).unwrap();
        assert_eq!(best.dissimilarity, 2.0);
        assert_eq!(best.keywords, ["xml"]);
    }

    #[test]
    fn all_keywords_missing_yields_no_candidate() {
        let q = Query::from_keywords(["a", "b"]);
        let rs = RuleSet::new();
        let a = avail(&[]);
        assert!(get_optimal_rq(&q, &a, &rs).is_none());
    }

    #[test]
    fn rule_beats_deletion_when_cheaper() {
        // Example 4 flavour: {on, line} with merge rule and "online" in T.
        let q = Query::from_keywords(["on", "line"]);
        let rs = RuleSet::table2();
        let a = avail(&["online"]);
        let best = get_optimal_rq(&q, &a, &rs).unwrap();
        assert_eq!(best.keywords, ["online"]);
        assert_eq!(best.dissimilarity, 1.0);
    }

    #[test]
    fn runner_up_candidates_are_ordered() {
        let q = Query::from_keywords(["on", "line", "data", "base"]);
        let rs = RuleSet::table2();
        let a = avail(&["online", "database", "line", "base"]);
        let res = get_top_optimal_rqs(&q, &a, &rs, 8);
        assert!(res.candidates.len() >= 3);
        assert!(res
            .candidates
            .windows(2)
            .all(|w| w[0].dissimilarity <= w[1].dissimilarity));
        // optimum: both merges = cost 2
        assert_eq!(res.candidates[0].keywords, ["database", "online"]);
        assert_eq!(res.candidates[0].dissimilarity, 2.0);
    }

    #[test]
    fn dp_optimum_matches_brute_force_on_example3() {
        let (q, rs, t) = example3();
        let a = avail(&t);
        let dp = get_top_optimal_rqs(&q, &a, &rs, 16);
        let bf = brute_force_rqs(&q, &a, &rs);
        assert_eq!(dp.candidates[0].dissimilarity, bf[0].dissimilarity);
        assert_eq!(dp.candidates[0].keywords, bf[0].keywords);
        // every DP candidate's cost is exactly the brute-force optimum for
        // that keyword set (no overestimates)
        for c in &dp.candidates {
            let reference = bf
                .iter()
                .find(|b| b.keywords == c.keywords)
                .expect("DP emitted a set brute force knows");
            assert_eq!(c.dissimilarity, reference.dissimilarity);
        }
    }

    #[test]
    fn insensitive_to_unrelated_rules() {
        let q = Query::from_keywords(["machine"]);
        let mut rs = RuleSet::new();
        rs.add(Rule::new(
            &["zzz"],
            &["yyy"],
            RefineOp::Substitute,
            RuleSource::Manual,
            0.5,
        ));
        let a = avail(&["machine", "yyy"]);
        let best = get_optimal_rq(&q, &a, &rs).unwrap();
        assert_eq!(best.dissimilarity, 0.0);
        assert_eq!(best.keywords, ["machine"]);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let q = Query::from_keywords(Vec::<String>::new());
        let rs = RuleSet::new();
        let a = avail(&["x"]);
        let res = get_top_optimal_rqs(&q, &a, &rs, 4);
        assert!(res.candidates.is_empty());
        assert_eq!(res.prefix_costs, vec![0.0]);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use lexicon::RuleSet;
    use std::collections::HashSet;

    fn avail(words: &[&str]) -> impl Fn(&str) -> bool {
        let set: HashSet<String> = words.iter().map(|s| s.to_string()).collect();
        move |w: &str| set.contains(w)
    }

    #[test]
    fn explanation_replays_to_the_target() {
        let q = Query::from_keywords(["on", "line", "data", "base"]);
        let rules = RuleSet::table2();
        let a = avail(&["online", "database", "line", "base"]);
        let target = vec!["database".to_string(), "online".to_string()];
        let (cost, ops) = explain_rq(&q, &a, &rules, &target).expect("explainable");
        assert_eq!(cost, 2.0);
        // two merge rules, nothing else
        let rule_count = ops
            .iter()
            .filter(|o| matches!(o, AppliedOp::Rule { .. }))
            .count();
        assert_eq!(rule_count, 2);
        // replay: ops' outputs produce exactly the target set and the
        // costs sum to the dissimilarity
        let mut produced: Vec<String> = Vec::new();
        let mut total = 0.0;
        for op in &ops {
            match op {
                AppliedOp::Kept(k) => produced.push(k.clone()),
                AppliedOp::Deleted(_) => total += rules.deletion_cost(),
                AppliedOp::Rule { rhs, cost, .. } => {
                    produced.extend(rhs.iter().cloned());
                    total += cost;
                }
            }
        }
        produced.sort();
        produced.dedup();
        assert_eq!(produced, target);
        assert_eq!(total, cost);
    }

    #[test]
    fn explanation_of_pure_deletion() {
        let q = Query::from_keywords(["xml", "ghost"]);
        let rules = RuleSet::new();
        let a = avail(&["xml"]);
        let (cost, ops) = explain_rq(&q, &a, &rules, &["xml".to_string()]).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(
            ops,
            vec![
                AppliedOp::Kept("xml".to_string()),
                AppliedOp::Deleted("ghost".to_string())
            ]
        );
    }

    #[test]
    fn unreachable_target_is_none() {
        let q = Query::from_keywords(["xml"]);
        let rules = RuleSet::new();
        let a = avail(&["xml"]);
        assert!(explain_rq(&q, &a, &rules, &["mars".to_string()]).is_none());
    }

    #[test]
    fn ops_render_for_humans() {
        let op = AppliedOp::Rule {
            lhs: vec!["on".into(), "line".into()],
            rhs: vec!["online".into()],
            op: lexicon::RefineOp::Merge,
            cost: 1.0,
        };
        assert_eq!(op.to_string(), "merge \"on line\" -> \"online\" (ds 1)");
        assert_eq!(AppliedOp::Kept("x".into()).to_string(), "keep \"x\"");
        assert_eq!(AppliedOp::Deleted("y".into()).to_string(), "delete \"y\"");
    }
}

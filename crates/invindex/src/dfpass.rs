//! The `f^T_k` pass (XML DF, Definition 3.2), shared by every builder.
//!
//! Given complete posting lists, the distinct-ancestor count per
//! `(type, keyword)` is independent of how the lists were produced, so
//! the DOM-parallel builder ([`crate::parallel`]) and the streaming
//! builder ([`crate::stream`]) both delegate here. The pass is
//! embarrassingly parallel across keywords: each worker owns a disjoint
//! keyword range and produces a local `df` map, merged at the end.
//!
//! The prefix-path lookup that the sequential reference builder performs
//! per posting per ancestor level (`NodeTypeTable::get`, which allocates
//! a fresh key `Vec` on every call) is hoisted into one table indexed by
//! `NodeTypeId` — for DBLP-shaped corpora that removes the dominant
//! allocation of the whole second pass.

use crate::postings::{Posting, PostingList};
use crate::stats::KeywordId;
use std::collections::HashMap;
use xmldom::{Document, NodeTypeId};

/// For each node type `t` (by id), the interned types of all prefixes of
/// `t`'s path: entry `m - 1` is the type of the length-`m` prefix, the
/// last entry is `t` itself.
pub(crate) fn prefix_type_table(doc: &Document) -> Vec<Vec<NodeTypeId>> {
    let types = doc.node_types();
    let mut table = Vec::with_capacity(types.len());
    for t in types.iter() {
        let path = types.path(t);
        let mut prefixes = Vec::with_capacity(path.len());
        for m in 1..=path.len() {
            prefixes.push(
                types
                    .get(&path[..m])
                    .expect("every prefix of an interned path is interned"),
            );
        }
        table.push(prefixes);
    }
    table
}

/// Computes all `(T, k) -> f^T_k` entries over `lists` using up to
/// `threads` workers (`<= 1` runs inline). Values are independent of the
/// thread count; only the (irrelevant) map iteration order varies.
pub(crate) fn compute_df(
    doc: &Document,
    lists: &[PostingList],
    threads: usize,
) -> HashMap<(NodeTypeId, KeywordId), u64> {
    compute_tf_df(doc, lists, None, threads).1
}

/// The fused frequency pass: `tf(k, T)` (when per-posting occurrence
/// counts are supplied) and `f^T_k` in one ancestor walk per posting.
/// `counts` is parallel to `lists` — `counts[k][i]` is the token count
/// behind posting `i` of keyword `k`.
///
/// Per keyword the accumulators are dense arrays indexed by `NodeTypeId`
/// (document type counts are tiny), drained into the result maps once
/// per keyword — the inner loop does no hashing at all.
pub(crate) fn compute_tf_df(
    doc: &Document,
    lists: &[PostingList],
    counts: Option<&[Vec<u64>]>,
    threads: usize,
) -> FreqMaps {
    let prefixes = prefix_type_table(doc);
    let num_types = doc.node_types().len();
    let kw_count = lists.len();
    if threads <= 1 || kw_count < 2 {
        let mut tf = HashMap::new();
        let mut df = HashMap::new();
        stats_range(
            lists, counts, &prefixes, num_types, 0, kw_count, &mut tf, &mut df,
        );
        return (tf, df);
    }
    let kw_chunk = kw_count.div_ceil(threads).max(1);
    let mut partials: Vec<FreqMaps> = Vec::new();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        let prefixes_ref = &prefixes;
        for start in (0..kw_count).step_by(kw_chunk) {
            let end = (start + kw_chunk).min(kw_count);
            handles.push(s.spawn(move |_| {
                let mut tf = HashMap::new();
                let mut df = HashMap::new();
                stats_range(
                    lists,
                    counts,
                    prefixes_ref,
                    num_types,
                    start,
                    end,
                    &mut tf,
                    &mut df,
                );
                (tf, df)
            }));
        }
        for h in handles {
            partials.push(h.join().expect("stats worker panicked"));
        }
    })
    .expect("crossbeam scope");

    // Workers own disjoint keyword ranges, so the key sets are disjoint.
    let (mut tf, mut df) = partials.pop().unwrap_or_default();
    for (ptf, pdf) in partials {
        tf.extend(ptf);
        df.extend(pdf);
    }
    (tf, df)
}

type FreqMap = HashMap<(NodeTypeId, KeywordId), u64>;
type FreqMaps = (FreqMap, FreqMap);

/// One keyword range of the fused pass. Distinct-ancestor counting for
/// `df`: along each document-ordered list, every ancestor level not
/// shared with the previous posting's label is a newly seen `T`-typed
/// container. `tf` adds the posting's occurrence count at every
/// ancestor-or-self level.
#[allow(clippy::too_many_arguments)]
fn stats_range(
    lists: &[PostingList],
    counts: Option<&[Vec<u64>]>,
    prefixes: &[Vec<NodeTypeId>],
    num_types: usize,
    start: usize,
    end: usize,
    tf: &mut FreqMap,
    df: &mut FreqMap,
) {
    let mut tf_local = vec![0u64; num_types];
    let mut df_local = vec![0u64; num_types];
    for (kid, list) in lists.iter().enumerate().take(end).skip(start) {
        let k = KeywordId(kid as u32);
        let mut prev: Option<&Posting> = None;
        for (i, p) in list.iter().enumerate() {
            let shared = prev
                .map(|q| q.dewey.common_prefix_len(&p.dewey))
                .unwrap_or(0);
            // A node's type path has exactly one entry per Dewey level.
            let path_types = &prefixes[p.node_type.0 as usize];
            if let Some(counts) = counts {
                let c = counts[kid][i];
                for (m, &t) in path_types.iter().enumerate() {
                    tf_local[t.0 as usize] += c;
                    if m >= shared {
                        df_local[t.0 as usize] += 1;
                    }
                }
            } else {
                for &t in &path_types[shared..p.dewey.len()] {
                    df_local[t.0 as usize] += 1;
                }
            }
            prev = Some(p);
        }
        for t in 0..num_types {
            if df_local[t] > 0 {
                df.insert((NodeTypeId(t as u32), k), df_local[t]);
                df_local[t] = 0;
            }
            if tf_local[t] > 0 {
                tf.insert((NodeTypeId(t as u32), k), tf_local[t]);
                tf_local[t] = 0;
            }
        }
    }
}

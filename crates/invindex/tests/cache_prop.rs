//! Randomized invariant checking for [`ShardedListCache`].
//!
//! A shadow model (an independent, naive reimplementation of the
//! per-shard LRU policy) predicts every hit/miss and the exact resident
//! set; after every operation the cache's own bookkeeping must agree
//! with itself (`check_invariants`) and with an operation log
//! (hits + misses = gets, decodes = inserts, bytes ≤ budget). A final
//! multi-threaded hammer checks the same reconciliation under real
//! contention, where only order-insensitive properties are predictable.

use invindex::{Posting, PostingList, ShardedListCache};
use std::sync::Arc;
use xmldom::{Dewey, NodeTypeId};

/// Deterministic splitmix64 — the tests must actually *run* their random
/// workloads, seeded and reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn list_of(id: u32) -> Arc<PostingList> {
    let postings = vec![Posting::new(
        Dewey::new(vec![0, id]).unwrap(),
        NodeTypeId(0),
    )];
    Arc::new(PostingList::from_sorted(postings))
}

/// The naive model: per shard, `(id, cost)` pairs in LRU order (front =
/// next victim). Mirrors the cache's budget split (remainder bytes land
/// on the first shards).
struct Model {
    shards: Vec<Vec<(u32, usize)>>,
    budgets: Vec<usize>,
}

impl Model {
    fn new(budget: usize, n: usize) -> Self {
        let base = budget / n;
        let rem = budget % n;
        Model {
            shards: vec![Vec::new(); n],
            budgets: (0..n).map(|i| base + usize::from(i < rem)).collect(),
        }
    }

    fn get(&mut self, id: u32) -> bool {
        let shard = &mut self.shards[id as usize % self.budgets.len()];
        match shard.iter().position(|&(i, _)| i == id) {
            Some(pos) => {
                let entry = shard.remove(pos);
                shard.push(entry);
                true
            }
            None => false,
        }
    }

    /// Returns the number of evictions the insert causes.
    fn insert(&mut self, id: u32, cost: usize) -> u64 {
        let s = id as usize % self.budgets.len();
        let budget = self.budgets[s];
        let shard = &mut self.shards[s];
        if cost > budget {
            return 0;
        }
        if let Some(pos) = shard.iter().position(|&(i, _)| i == id) {
            shard.remove(pos);
        }
        let mut evicted = 0;
        let used = |sh: &Vec<(u32, usize)>| sh.iter().map(|&(_, c)| c).sum::<usize>();
        while used(shard) + cost > budget {
            shard.remove(0);
            evicted += 1;
        }
        shard.push((id, cost));
        evicted
    }

    fn bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|&(_, c)| c))
            .sum()
    }
}

#[test]
fn randomized_workload_matches_the_naive_model() {
    for (seed, budget, n_shards, universe) in [
        (1u64, 400usize, 4usize, 24u64),
        (2, 1000, 8, 64),
        (3, 64, 1, 16),
        (4, 0, 8, 16), // zero budget: nothing is ever resident
        (5, 10_000, 3, 100),
    ] {
        let cache = ShardedListCache::new(budget, n_shards);
        let mut model = Model::new(budget, n_shards);
        let mut rng = Rng(seed);
        let (mut gets, mut inserts, mut evictions) = (0u64, 0u64, 0u64);
        let (mut hits, mut misses) = (0u64, 0u64);

        for step in 0..4000 {
            let id = rng.below(universe) as u32;
            if rng.below(100) < 55 {
                gets += 1;
                let got = cache.get(id);
                let expected = model.get(id);
                assert_eq!(
                    got.is_some(),
                    expected,
                    "seed {seed} step {step}: get({id}) disagreed with the model"
                );
                if expected {
                    hits += 1;
                } else {
                    misses += 1;
                }
            } else {
                inserts += 1;
                // costs span "fits easily" through "oversize for a shard"
                let cost = (rng.below(budget.max(1) as u64 / 2 + 40)) as usize + 1;
                cache.insert(id, list_of(id), cost);
                evictions += model.insert(id, cost);
            }
            if step % 64 == 0 {
                cache.check_invariants();
            }
        }
        cache.check_invariants();

        // op-log reconciliation: every counter is fully explained by the
        // operations issued and the model's predictions
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, gets, "seed {seed}: gets unaccounted");
        assert_eq!((s.hits, s.misses), (hits, misses), "seed {seed}");
        assert_eq!(s.lists_decoded, inserts, "seed {seed}: inserts unaccounted");
        assert_eq!(s.evictions, evictions, "seed {seed}: evictions diverged");
        assert_eq!(s.cached_bytes, model.bytes(), "seed {seed}: resident bytes");
        assert!(s.cached_bytes <= budget, "seed {seed}: budget exceeded");
    }
}

#[test]
fn handles_stay_valid_after_their_entry_is_evicted() {
    // one shard, budget of exactly one entry: the second insert evicts
    // the first, whose Arc must keep the decoded list alive
    let cache = ShardedListCache::new(100, 1);
    cache.insert(1, list_of(1), 100);
    let held = cache.get(1).expect("resident");
    cache.insert(2, list_of(2), 100);
    assert!(cache.get(1).is_none(), "1 must be evicted");
    assert_eq!(held.as_slice().len(), 1, "evicted handle still readable");
    assert_eq!(held.as_slice()[0].dewey, Dewey::new(vec![0, 1]).unwrap());
}

#[test]
fn concurrent_hammer_reconciles_with_the_op_log() {
    let cache = ShardedListCache::new(2000, 8);
    const THREADS: u64 = 8;
    const OPS: u64 = 3000;
    let mut per_thread: Vec<(u64, u64)> = Vec::new(); // (gets, inserts)
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = &cache;
            handles.push(s.spawn(move || {
                let mut rng = Rng(0xfeed + t);
                let (mut gets, mut inserts) = (0u64, 0u64);
                for _ in 0..OPS {
                    let id = rng.below(96) as u32;
                    if rng.below(100) < 60 {
                        gets += 1;
                        if let Some(list) = cache.get(id) {
                            // the cached value must be the one keyed here
                            assert_eq!(list.as_slice()[0].dewey.components()[1], id);
                        }
                    } else {
                        inserts += 1;
                        let cost = rng.below(400) as usize + 1;
                        cache.insert(id, list_of(id), cost);
                    }
                }
                (gets, inserts)
            }));
        }
        for h in handles {
            per_thread.push(h.join().expect("hammer thread panicked"));
        }
    });

    cache.check_invariants();
    let s = cache.stats();
    let gets: u64 = per_thread.iter().map(|&(g, _)| g).sum();
    let inserts: u64 = per_thread.iter().map(|&(_, i)| i).sum();
    assert_eq!(s.hits + s.misses, gets, "gets unaccounted under contention");
    assert_eq!(s.lists_decoded, inserts, "inserts unaccounted");
    assert!(s.cached_bytes <= 2000, "budget exceeded under contention");
}

#[test]
fn aggregated_stats_equal_the_sum_of_per_shard_snapshots() {
    // The obs merge invariant: `stats()` must be exactly the field-wise
    // sum of `per_shard_stats()`, including after a concurrent hammer.
    let cache = ShardedListCache::new(2000, 8);
    const THREADS: u64 = 8;
    const OPS: u64 = 2000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            s.spawn(move || {
                let mut rng = Rng(0xabcd + t);
                for _ in 0..OPS {
                    let id = rng.below(96) as u32;
                    if rng.below(100) < 60 {
                        let _ = cache.get(id);
                    } else {
                        cache.insert(id, list_of(id), rng.below(400) as usize + 1);
                    }
                }
            });
        }
    });

    let per_shard = cache.per_shard_stats();
    assert_eq!(per_shard.len(), cache.shard_count());
    let mut summed = invindex::CacheStats::default();
    for s in &per_shard {
        summed.hits += s.hits;
        summed.misses += s.misses;
        summed.lists_decoded += s.lists_decoded;
        summed.evictions += s.evictions;
        summed.cached_bytes += s.cached_bytes;
    }
    assert_eq!(summed, cache.stats(), "per-shard sum diverged from stats()");
}

//! Property test: the four SLCA algorithms are extensionally equal to the
//! brute-force reference on arbitrary document-ordered posting lists.

use invindex::Posting;
use proptest::prelude::*;
use slca::{
    slca_brute_force, slca_indexed_lookup_eager, slca_multiway, slca_scan_eager, slca_stack,
};
use xmldom::{Dewey, NodeTypeId};

/// Random Dewey label with small fanout/depth so collisions, nestings and
/// shared prefixes are frequent.
fn dewey_strategy() -> impl Strategy<Value = Dewey> {
    proptest::collection::vec(0u32..3, 0..5).prop_map(|mut tail| {
        let mut comps = vec![0u32];
        comps.append(&mut tail);
        Dewey::new(comps).expect("non-empty")
    })
}

fn list_strategy() -> impl Strategy<Value = Vec<Posting>> {
    proptest::collection::btree_set(
        dewey_strategy().prop_map(|d| d.components().to_vec()),
        1..12,
    )
    .prop_map(|set| {
        set.into_iter()
            .map(|c| Posting::new(Dewey::new(c).unwrap(), NodeTypeId(0)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn all_algorithms_agree_with_brute_force(
        lists in proptest::collection::vec(list_strategy(), 1..4)
    ) {
        let refs: Vec<&[Posting]> = lists.iter().map(|l| l.as_slice()).collect();
        let expected = slca_brute_force(&refs);
        prop_assert_eq!(slca_stack(&refs), expected.clone(), "stack");
        prop_assert_eq!(slca_scan_eager(&refs), expected.clone(), "scan-eager");
        prop_assert_eq!(slca_indexed_lookup_eager(&refs), expected.clone(), "ile");
        prop_assert_eq!(slca_multiway(&refs), expected, "multiway");
    }

    #[test]
    fn slca_results_are_antichain_and_cover_all_keywords(
        lists in proptest::collection::vec(list_strategy(), 1..4)
    ) {
        let refs: Vec<&[Posting]> = lists.iter().map(|l| l.as_slice()).collect();
        let result = slca_stack(&refs);
        // antichain: no result is an ancestor of another
        for a in &result {
            for b in &result {
                prop_assert!(!(a != b && a.is_ancestor_of(b)));
            }
        }
        // soundness: every result's subtree contains a match of every list
        for r in &result {
            for list in &refs {
                prop_assert!(
                    list.iter().any(|p| r.is_ancestor_or_self_of(&p.dewey)),
                    "result {} misses a keyword", r
                );
            }
        }
    }

    #[test]
    fn lemma1_subset_queries_keep_results(
        lists in proptest::collection::vec(list_strategy(), 2..4)
    ) {
        // Lemma 1: if a keyword superset has an SLCA, every subset has one.
        let refs: Vec<&[Posting]> = lists.iter().map(|l| l.as_slice()).collect();
        let full = slca_stack(&refs);
        if !full.is_empty() {
            for skip in 0..refs.len() {
                let subset: Vec<&[Posting]> = refs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, l)| *l)
                    .collect();
                prop_assert!(!slca_stack(&subset).is_empty());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn elca_agrees_with_reference_and_contains_slca(
        lists in proptest::collection::vec(list_strategy(), 1..4)
    ) {
        use slca::{elca, elca_brute_force, slca_via_elca};
        let refs: Vec<&[Posting]> = lists.iter().map(|l| l.as_slice()).collect();
        let fast = elca(&refs);
        let slow = elca_brute_force(&refs);
        prop_assert_eq!(&fast, &slow);
        // ELCA ⊇ SLCA, and minimal(ELCA) == SLCA
        let slca = slca_brute_force(&refs);
        for s in &slca {
            prop_assert!(fast.contains(s), "SLCA {} missing from ELCA", s);
        }
        prop_assert_eq!(slca_via_elca(&refs), slca);
    }
}

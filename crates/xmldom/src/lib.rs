//! `xmldom` — the XML substrate of the XRefine reproduction.
//!
//! Provides everything the paper assumes of its XML layer (§III, §VII):
//!
//! * [`dewey::Dewey`] labels whose lexicographic order is document order
//!   and whose longest common prefix is the LCA;
//! * a from-scratch XML 1.0 [`parser`];
//! * an arena [`tree::Document`] with interned tag names and node types
//!   (prefix paths, Definition 3.1);
//! * the canonical keyword [`fn@tokenize`]r shared by index build and query
//!   parsing;
//! * a streaming zero-copy [`scan`]ner emitting span events over a
//!   borrowed buffer, with a bounded-memory Dewey labeller — the ingest
//!   path for corpus-scale index builds (the DOM [`parser`] stays as the
//!   reference implementation);
//! * the paper's Figure 1 document as a reusable [`fixtures`] fixture.

pub mod dewey;
pub mod fixtures;
pub mod intern;
pub mod parser;
pub mod scan;
pub mod tokenize;
pub mod tree;

pub use dewey::Dewey;
pub use intern::{NodeTypeId, NodeTypeTable, Symbol, SymbolTable};
pub use parser::{parse_document, parse_with, ParseError, ParseErrorKind, XmlHandler};
pub use scan::{
    check_document, decode_text, scan_with, AttrIter, DeweyTracker, ScanError, ScanErrorKind,
    ScanSink, ScanStats, Span, MAX_SCAN_DEPTH,
};
pub use tokenize::{for_each_token, normalize_keyword, tokenize, tokenize_query};
pub use tree::{Document, DocumentBuilder, Node, NodeId};

//! Property tests for the lexical machinery: edit-distance metric laws,
//! stemmer stability, and rule-generation soundness.

use lexicon::{
    damerau_levenshtein, generate_rules, levenshtein, porter_stem, within_distance, AcronymTable,
    RuleGenConfig, Thesaurus, VocabIndex,
};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{0,10}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        // identity
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        // symmetry
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // triangle inequality
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // bounded by longer length
        prop_assert!(levenshtein(&a, &b) <= a.len().max(b.len()));
    }

    #[test]
    fn damerau_is_symmetric_and_bounded_by_levenshtein(a in word(), b in word()) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert_eq!(d, damerau_levenshtein(&b, &a));
        prop_assert!(d <= levenshtein(&a, &b));
        // length difference is a lower bound
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn within_distance_is_consistent(a in word(), b in word(), max in 0usize..4) {
        match within_distance(&a, &b, max) {
            Some(d) => {
                prop_assert!(d <= max);
                prop_assert_eq!(d, damerau_levenshtein(&a, &b));
            }
            None => prop_assert!(damerau_levenshtein(&a, &b) > max),
        }
    }

    #[test]
    fn single_edits_are_distance_one(a in "[a-z]{2,8}", pos_seed in any::<usize>()) {
        let chars: Vec<char> = a.chars().collect();
        let pos = pos_seed % chars.len();
        // deletion
        let mut del: Vec<char> = chars.clone();
        del.remove(pos);
        let del: String = del.into_iter().collect();
        prop_assert_eq!(damerau_levenshtein(&a, &del), 1);
        // substitution with a guaranteed-different char
        let mut sub = chars.clone();
        sub[pos] = if sub[pos] == 'z' { 'a' } else { 'z' };
        let changed = sub != chars;
        let sub: String = sub.into_iter().collect();
        if changed {
            prop_assert_eq!(damerau_levenshtein(&a, &sub), 1);
        }
    }

    #[test]
    fn porter_stem_never_grows_lowercase_ascii_words(a in "[a-z]{3,12}") {
        let s = porter_stem(&a);
        prop_assert!(s.len() <= a.len());
        prop_assert!(!s.is_empty());
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn generated_rules_are_sound(
        query in proptest::collection::vec("[a-z]{2,8}", 1..4),
        vocab_words in proptest::collection::btree_set("[a-z]{2,8}", 1..12),
    ) {
        let vocab = VocabIndex::new(vocab_words.iter().cloned());
        let rules = generate_rules(
            &query,
            &vocab,
            &Thesaurus::bibliographic(),
            &AcronymTable::computer_science(),
            &RuleGenConfig::default(),
        );
        for (_, r) in rules.iter() {
            // every RHS keyword must exist in the data
            for w in &r.rhs {
                prop_assert!(vocab.contains(w), "rule {} has non-vocab RHS", r);
            }
            // every LHS is a contiguous subsequence of the query
            let l = r.lhs.len();
            let found = (0..query.len().saturating_sub(l - 1))
                .any(|i| query[i..i + l] == r.lhs[..]);
            prop_assert!(found, "rule {} LHS not in query {:?}", r, query);
            // scores are positive and below the deletion cost ceiling for
            // merge/split (the paper's ordering principle)
            prop_assert!(r.dissimilarity > 0.0);
        }
    }
}

//! Algorithm 3: short-list eager Top-K query refinement.
//!
//! Step 1 explores refined-query candidates starting from the keyword with
//! the shortest inverted list: for every partition containing that
//! keyword, the other lists are probed by random access to assemble the
//! partition's available keyword set `T`, and the dynamic program
//! proposes candidates. After a keyword's iteration, every refined query
//! containing it is known, so its list is removed; the loop stops early
//! once even the optimistic dissimilarity of the remaining keyword set
//! (`C_potential`) cannot beat the current list. Step 2 computes the
//! SLCAs of the surviving candidates with an existing SLCA method over
//! the full lists.
//!
//! The "smart choice" of §VI-C is implemented: among remaining keywords,
//! prefer those that appear on the RHS of the pertinent rules or in the
//! original query (keywords needing no refinement), breaking ties by list
//! length.

use crate::dp::get_optimal_rq;
use crate::partition::{finalize, DpMemo, SlcaMethod};
use crate::ranking::RankingConfig;
use crate::results::RefineOutcome;
use crate::rqlist::RqSortedList;
use crate::session::RefineSession;
use crate::util::KeyMask;
use invindex::ListHandle;
use std::collections::{HashMap, HashSet};
use xmldom::Dewey;

/// Options of the short-list eager algorithm.
pub struct SleOptions {
    pub k: usize,
    /// SLCA method for step 2.
    pub slca: SlcaMethod,
    pub ranking: RankingConfig,
    /// Enable the §VI-C smart keyword-choice heuristic.
    pub smart_choice: bool,
}

impl Default for SleOptions {
    fn default() -> Self {
        SleOptions {
            k: 1,
            slca: slca::slca_scan_eager,
            ranking: RankingConfig::default(),
            smart_choice: true,
        }
    }
}

/// Runs Algorithm 3.
pub fn sle_refine(session: &RefineSession<'_>, options: &SleOptions) -> RefineOutcome {
    let k = options.k.max(1);
    let mut rq_list = RqSortedList::new(2 * k);
    let mut dp_memo = DpMemo::new();

    // KSet: indices of keywords with non-empty lists (keywords absent from
    // the document can appear in no refined query).
    let mut remaining: Vec<usize> = (0..session.width())
        .filter(|&i| !session.lists[i].is_empty())
        .collect();

    // Keywords that appear on some rule's RHS (they are "already refined")
    // or in the original query: preferred anchors under the smart choice.
    let stable: HashSet<usize> = {
        let mut s: HashSet<usize> = session
            .rules
            .rhs_keywords()
            .iter()
            .filter_map(|w| session.pos(w))
            .collect();
        for w in session.query.keywords() {
            let in_lhs = session
                .rules
                .iter()
                .any(|(_, r)| r.lhs.iter().any(|l| l == w));
            if !in_lhs {
                if let Some(i) = session.pos(w) {
                    s.insert(i);
                }
            }
        }
        s
    };

    let mut processed_partitions: HashSet<Dewey> = HashSet::new();
    // Flushed as one atomic add per query (hot-loop discipline).
    let mut partitions_probed = 0u64;
    let mut early_stops = 0u64;

    while !remaining.is_empty() {
        // Stop condition (line 4): even the best refined query over the
        // remaining keywords cannot enter the list.
        if rq_list.is_full() {
            let remaining_set: HashSet<&str> =
                remaining.iter().map(|&i| session.ks[i].as_str()).collect();
            let availability = |w: &str| remaining_set.contains(w);
            let c_potential = get_optimal_rq(&session.query, &availability, &session.rules)
                .map(|c| c.dissimilarity)
                .unwrap_or(f64::INFINITY);
            if c_potential > rq_list.admission_threshold() {
                early_stops += 1;
                break;
            }
        }

        // Choose k_i: smart preference, then shortest list.
        let pick_pos = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let smart_penalty = usize::from(options.smart_choice && !stable.contains(&i));
                (smart_penalty, session.lists[i].len(), i)
            })
            .map(|(p, _)| p)
            .expect("remaining non-empty");
        let ki = remaining.swap_remove(pick_pos);

        // Walk S_i sequentially; each new partition is probed once.
        for posting in session.lists[ki].iter() {
            // sequential advance over the anchor list
            session_advance(session);
            let Some(pid) = posting.dewey.partition() else {
                continue;
            };
            if !processed_partitions.insert(pid.clone()) {
                continue;
            }
            partitions_probed += 1;
            // Random-access probes: which keywords occur in this partition?
            let mut mask = KeyMask::empty(session.width());
            mask.set(ki);
            for (j, list) in session.lists.iter().enumerate() {
                if j == ki || list.is_empty() {
                    continue;
                }
                session_random(session);
                let range = list.partition_range(&pid);
                if !range.is_empty() {
                    mask.set(j);
                }
            }
            let candidates = dp_memo.candidates(session, mask, 2 * k + 8);
            for cand in candidates.iter().cloned() {
                rq_list.insert(cand);
            }
        }
    }

    obs::counter!("xrefine_partitions_scanned_total").add(partitions_probed);
    obs::counter!("xrefine_sle_early_stops_total").add(early_stops);
    obs::trace::count("partitions.scanned", partitions_probed);

    // Step 2: SLCAs for the surviving candidates over the full lists.
    let mut slcas_by_rq: HashMap<String, Vec<Dewey>> = HashMap::new();
    let mut kept = RqSortedList::new(2 * k);
    for cand in rq_list.into_vec() {
        let slices: Vec<ListHandle> = cand
            .keywords
            .iter()
            .map(|kw| {
                session
                    .pos(kw)
                    .map(|i| {
                        // step-2 rescan accounting
                        session
                            .scan_stats
                            .record_advances(session.lists[i].len() as u64);
                        session.lists[i].clone()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let meaningful = session.filter.filter((options.slca)(&slices));
        if meaningful.is_empty() {
            continue;
        }
        slcas_by_rq.insert(cand.canonical(), meaningful);
        kept.insert(cand);
    }

    finalize(session, kept, slcas_by_rq, k, &options.ranking)
}

fn session_advance(session: &RefineSession<'_>) {
    session.scan_stats.record_advance();
}

fn session_random(session: &RefineSession<'_>) {
    session.scan_stats.record_random_access();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_refine, PartitionOptions};
    use crate::query::Query;
    use invindex::Index;
    use lexicon::RuleSet;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    #[allow(dead_code)]
    fn run(q: &[&str], k: usize) -> RefineOutcome {
        let idx = Index::build(Arc::new(figure1()));
        let query = Query::from_keywords(q.iter().map(|s| s.to_string()));
        let session = RefineSession::new(&idx, query, RuleSet::table2()).unwrap();
        sle_refine(
            &session,
            &SleOptions {
                k,
                ..Default::default()
            },
        )
    }

    #[test]
    fn finds_same_optimum_as_partition() {
        for q in [
            vec!["on", "line", "data", "base"],
            vec!["xml", "john", "2003"],
            vec!["john", "fishing"],
            vec!["database", "publication"],
        ] {
            let idx = Index::build(Arc::new(figure1()));
            let query = Query::from_keywords(q.iter().map(|s| s.to_string()));
            let s1 = RefineSession::new(&idx, query.clone(), RuleSet::table2()).unwrap();
            let s2 = RefineSession::new(&idx, query, RuleSet::table2()).unwrap();
            let a = partition_refine(
                &s1,
                &PartitionOptions {
                    k: 2,
                    ..Default::default()
                },
            );
            let b = sle_refine(
                &s2,
                &SleOptions {
                    k: 2,
                    ..Default::default()
                },
            );
            assert_eq!(a.original_ok, b.original_ok, "query {q:?}");
            match (a.best(), b.best()) {
                (Some(x), Some(y)) => assert_eq!(
                    x.candidate.dissimilarity, y.candidate.dissimilarity,
                    "query {q:?}"
                ),
                (None, None) => {}
                other => panic!("disagreement on {q:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn example6_term_deletion_refinements() {
        // Example 6: Q4 = {xml, john, 2003}, deletion-only refinement.
        let idx = Index::build(Arc::new(figure1()));
        let query = Query::from_keywords(["xml", "john", "2003"]);
        let session = RefineSession::new(&idx, query, RuleSet::new()).unwrap();
        let out = sle_refine(
            &session,
            &SleOptions {
                k: 2,
                ..Default::default()
            },
        );
        assert!(!out.original_ok);
        assert!(!out.refinements.is_empty());
        // Both surviving refinements delete exactly one keyword (dSim 2).
        for r in &out.refinements {
            assert_eq!(r.candidate.dissimilarity, 2.0);
            assert_eq!(r.candidate.keywords.len(), 2);
            assert!(!r.slcas.is_empty());
        }
    }

    #[test]
    fn uses_random_accesses_unlike_full_scans() {
        let idx = Index::build(Arc::new(figure1()));
        let query = Query::from_keywords(["xml", "john", "2003"]);
        let session = RefineSession::new(&idx, query, RuleSet::new()).unwrap();
        let out = sle_refine(&session, &SleOptions::default());
        assert!(out.random_accesses > 0);
    }
}

//! The per-file source model rules run against.
//!
//! A [`SourceFile`] owns the token stream plus three per-line overlays:
//!
//! * **test lines** — lines inside `#[cfg(test)]` modules, `#[test]`
//!   functions, or files that live under `tests/`, `benches/` or
//!   `examples/`. Most rules skip them: test code is allowed to panic.
//! * **suppression pragmas** — `// xlint::allow(<rule>): <justification>`
//!   suppresses findings of `<rule>` on the pragma's own line and the
//!   line after it. The justification is *required*; a bare pragma is
//!   itself a finding (rule `pragma`).
//! * **lock annotations** — `// xlint::lock(<name>)` names the lock a
//!   `.lock()`/`.read()`/`.write()` acquisition site takes, tying it to
//!   the declared hierarchy in `lockorder.toml`.
//! * **safety annotations** — `// xlint::safety(<invariant>)` states the
//!   invariant an `unsafe` block relies on; the `unsafe-audit` rule
//!   requires one per block and inventories them into SAFETY.md.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;

/// Whether a file is production or test code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Linted in full (minus `#[cfg(test)]` / `#[test]` regions).
    Production,
    /// Only pragma hygiene is checked.
    Test,
}

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: usize,
    pub rule: String,
    pub justification: String,
}

/// One analyzable source file.
pub struct SourceFile {
    /// Workspace-relative path used in diagnostics and path-scoped rules.
    pub path: String,
    pub kind: FileKind,
    pub tokens: Vec<Token>,
    /// Raw source lines, for diagnostic rendering (1-based access via
    /// [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// 1-based line -> inside a test region.
    test_lines: Vec<bool>,
    /// All suppression pragmas, in file order.
    pub allows: Vec<Allow>,
    /// line -> lock name, from `xlint::lock(...)` annotations.
    lock_names: HashMap<usize, String>,
    /// line -> safety invariant, from `xlint::safety(...)` annotations.
    safety_notes: HashMap<usize, String>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str, kind: FileKind) -> SourceFile {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let n = lines.len();
        let mut test_lines = vec![kind == FileKind::Test; n + 2];
        if kind == FileKind::Production {
            mark_test_regions(&tokens, &mut test_lines);
        }
        let (allows, lock_names, safety_notes) = collect_annotations(&tokens);
        SourceFile {
            path: path.to_string(),
            kind,
            tokens,
            lines,
            test_lines,
            allows,
            lock_names,
            safety_notes,
        }
    }

    /// Is this 1-based line inside test code?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Is a finding of `rule` at `line` suppressed by a pragma? A pragma
    /// covers its own line (trailing style) and the next line (line-above
    /// style). Only pragmas carrying a justification suppress anything.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && !a.justification.is_empty() && (a.line == line || a.line + 1 == line)
        })
    }

    /// The declared lock name for an acquisition at `line`, from an
    /// annotation on the same line or the line above.
    pub fn lock_name_at(&self, line: usize) -> Option<&str> {
        self.lock_names
            .get(&line)
            .or_else(|| line.checked_sub(1).and_then(|l| self.lock_names.get(&l)))
            .map(String::as_str)
    }

    /// The declared safety invariant for an `unsafe` block at `line`,
    /// from an annotation on the same line or the line above.
    pub fn safety_at(&self, line: usize) -> Option<&str> {
        self.safety_notes
            .get(&line)
            .or_else(|| line.checked_sub(1).and_then(|l| self.safety_notes.get(&l)))
            .map(String::as_str)
    }

    /// Non-comment tokens (what the rules pattern-match on).
    pub fn code_tokens(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_comment()).collect()
    }
}

/// Marks every line covered by a `#[test]`-attributed item or a
/// `#[cfg(test)]` module/function as test code.
///
/// The walk is token-based: on `#[...]` containing the identifier
/// `test`, the next `{` opens the item body; everything up to its
/// matching `}` is a test region. An attribute followed by `;` before
/// any `{` (e.g. `#[cfg(test)] use foo;`) marks only those lines.
fn mark_test_regions(tokens: &[Token], test_lines: &mut [bool]) {
    let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // collect the attribute
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if !has_test {
                i = j + 1;
                continue;
            }
            // Skip any further attributes, then find the item body.
            let mut k = j + 1;
            while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                let mut d = 0usize;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        d += 1;
                    } else if toks[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            }
            let region_start = toks[i].line;
            let mut brace = 0usize;
            let mut end_line = None;
            while k < toks.len() {
                if brace == 0 && toks[k].is_punct(';') {
                    // itemless attribute target (`#[cfg(test)] use …;`)
                    end_line = Some(toks[k].line);
                    break;
                }
                if toks[k].is_punct('{') {
                    brace += 1;
                } else if toks[k].is_punct('}') {
                    brace -= 1;
                    if brace == 0 {
                        end_line = Some(toks[k].line);
                        break;
                    }
                }
                k += 1;
            }
            let end_line = end_line.unwrap_or_else(|| toks.last().map(|t| t.line).unwrap_or(1));
            for line in region_start..=end_line {
                if line < test_lines.len() {
                    test_lines[line] = true;
                }
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
}

/// Extracts `xlint::allow(...)`, `xlint::lock(...)` and
/// `xlint::safety(...)` annotations from comment tokens.
#[allow(clippy::type_complexity)]
fn collect_annotations(
    tokens: &[Token],
) -> (Vec<Allow>, HashMap<usize, String>, HashMap<usize, String>) {
    let mut allows = Vec::new();
    let mut locks = HashMap::new();
    let mut safeties = HashMap::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = t.text.trim();
        if let Some(rest) = body.strip_prefix("xlint::allow(") {
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let justification = after
                .strip_prefix(':')
                .map(|j| j.trim().to_string())
                .unwrap_or_default();
            allows.push(Allow {
                line: t.line,
                rule,
                justification,
            });
        } else if let Some(rest) = body.strip_prefix("xlint::lock(") {
            if let Some(close) = rest.find(')') {
                locks.insert(t.line, rest[..close].trim().to_string());
            }
        } else if let Some(rest) = body.strip_prefix("xlint::safety(") {
            // The invariant may itself contain parentheses: close at the
            // *last* `)` on the comment.
            if let Some(close) = rest.rfind(')') {
                safeties.insert(t.line, rest[..close].trim().to_string());
            }
        }
    }
    (allows, locks, safeties)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_code() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() {}\n\
                   }\n\
                   fn prod2() {}\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_extra_attributes_is_covered() {
        let src =
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n  body();\n}\nfn p() {}\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        for line in 1..=5 {
            assert!(f.is_test_line(line), "line {line}");
        }
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn non_test_attributes_do_not_open_regions() {
        let src = "#[derive(Debug)]\nstruct S { a: u32 }\nfn f() {}\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        assert!(!f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn pragmas_and_lock_annotations_parse() {
        let src = "// xlint::allow(no-panic-paths): checked two lines up\n\
                   let x = v[i]; // xlint::lock(cache.shard)\n\
                   // xlint::allow(lock-order)\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        assert!(f.is_suppressed("no-panic-paths", 2));
        assert!(!f.is_suppressed("no-panic-paths", 4));
        assert_eq!(f.lock_name_at(2), Some("cache.shard"));
        // The bare pragma parses but suppresses nothing.
        let bare = &f.allows[1];
        assert_eq!(bare.rule, "lock-order");
        assert!(bare.justification.is_empty());
        assert!(!f.is_suppressed("lock-order", 4));
    }

    #[test]
    fn safety_annotations_parse_with_nested_parens() {
        let src = "// xlint::safety(act outlives the syscall (kernel ABI layout))\n\
                   unsafe { raw() }\n\
                   unsafe { other() } // xlint::safety(same line form)\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        assert_eq!(
            f.safety_at(2),
            Some("act outlives the syscall (kernel ABI layout)")
        );
        assert_eq!(f.safety_at(3), Some("same line form"));
        assert_eq!(
            f.safety_at(1),
            Some("act outlives the syscall (kernel ABI layout)")
        );
    }

    #[test]
    fn files_under_tests_are_entirely_test_code() {
        let f = SourceFile::parse("crates/x/tests/t.rs", "fn f() {}\n", FileKind::Test);
        assert!(f.is_test_line(1));
    }
}

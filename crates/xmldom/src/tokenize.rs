//! Keyword tokenization.
//!
//! A keyword in the paper matches either a *tag name* or a *value term* in
//! the XML data (§III). This module defines the single tokenization used
//! everywhere — index build, query parsing and rule mining — so that the
//! three always agree on what a keyword is: lowercase alphanumeric runs.

/// Splits text into lowercase keyword tokens.
///
/// Tokens are maximal runs of alphanumeric characters; everything else is a
/// separator. Case is folded so queries match regardless of capitalization.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut scratch = String::new();
    for_each_token(text, &mut scratch, |tok| out.push(tok.to_string()));
    out
}

/// Visits each token of `text` as a borrowed slice of the reused
/// `scratch` buffer — the exact tokens of [`tokenize`], in order,
/// without a `String` allocation per token. This is the hot-path
/// variant the streaming index builder uses; `scratch` is left cleared.
pub fn for_each_token(text: &str, scratch: &mut String, mut f: impl FnMut(&str)) {
    scratch.clear();
    for ch in text.chars() {
        if ch.is_ascii() {
            // Fast path: corpora are overwhelmingly ASCII.
            if ch.is_ascii_alphanumeric() {
                scratch.push(ch.to_ascii_lowercase());
                continue;
            }
        } else if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                scratch.push(lc);
            }
            continue;
        }
        if !scratch.is_empty() {
            f(scratch);
            scratch.clear();
        }
    }
    if !scratch.is_empty() {
        f(scratch);
        scratch.clear();
    }
}

/// Normalizes a single keyword the same way [`tokenize`] does, returning
/// `None` if the input contains no alphanumeric characters. If the input
/// would split into several tokens, only the first is returned; use
/// [`tokenize`] when that matters.
pub fn normalize_keyword(raw: &str) -> Option<String> {
    tokenize(raw).into_iter().next()
}

/// Tokenizes a whole keyword query string into its keyword list, preserving
/// order and duplicates (`{on, line, data, base}` has four keywords).
pub fn tokenize_query(query: &str) -> Vec<String> {
    tokenize(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics_and_lowercases() {
        assert_eq!(
            tokenize("Online Database-Tuning, 2003!"),
            ["online", "database", "tuning", "2003"]
        );
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
    }

    #[test]
    fn unicode_casefolding() {
        assert_eq!(tokenize("Über-Straße"), ["über", "straße"]);
    }

    #[test]
    fn digits_are_keywords() {
        assert_eq!(tokenize("year: 2003"), ["year", "2003"]);
    }

    #[test]
    fn normalize_keyword_takes_first_token() {
        assert_eq!(normalize_keyword("  XML "), Some("xml".to_string()));
        assert_eq!(normalize_keyword("twig join"), Some("twig".to_string()));
        assert_eq!(normalize_keyword("!!"), None);
    }

    #[test]
    fn query_tokenization_preserves_duplicates_and_order() {
        assert_eq!(
            tokenize_query("on line data base on"),
            ["on", "line", "data", "base", "on"]
        );
    }
}

//! Figure 4: Top-1 refinement time per sample query, hot cache —
//! stack-refine vs SLE vs Partition, against the plain-SLCA baselines
//! stack-slca and scan-slca (which answer only the *original* query).
//!
//! Expected shape (paper §VIII-A): Partition <= SLE < stack-refine on
//! nearly all queries; Partition within ~1.3x of scan-slca; for queries
//! whose original SLCA degenerates to the root, Partition can even beat
//! the baselines.

use bench::{dblp, engine, f3, time_ms, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{Algorithm, Query};

fn main() {
    let doc = dblp(1.0);
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 2,
            ..Default::default()
        },
    );
    let mut e = engine(doc, Algorithm::Partition, 1);
    let reps = 3;

    let mut t = Table::new(&[
        "query",
        "kind",
        "stack-slca",
        "scan-slca",
        "stack-refine",
        "SLE",
        "Partition",
        "results",
    ]);

    let mut totals = [0.0f64; 5];
    let mut n = 0usize;
    for wq in &workload {
        if wq.kind == PerturbKind::None && n % 2 == 1 {
            continue; // keep the variety queries but not all of them
        }
        let q = Query::from_keywords(wq.keywords.iter().cloned());

        let t_stack_slca = time_ms(
            || {
                std::hint::black_box(
                    e.baseline_slca(&q, slca::slca_stack)
                        .expect("slca computed"),
                );
            },
            reps,
        );
        let t_scan_slca = time_ms(
            || {
                std::hint::black_box(
                    e.baseline_slca(&q, slca::slca_scan_eager)
                        .expect("slca computed"),
                );
            },
            reps,
        );

        e.config_mut().algorithm = Algorithm::StackRefine;
        let t_stack_refine = time_ms(
            || {
                std::hint::black_box(e.answer_query(q.clone()).expect("query answered"));
            },
            reps,
        );
        e.config_mut().algorithm = Algorithm::ShortListEager;
        let t_sle = time_ms(
            || {
                std::hint::black_box(e.answer_query(q.clone()).expect("query answered"));
            },
            reps,
        );
        e.config_mut().algorithm = Algorithm::Partition;
        let t_partition = time_ms(
            || {
                std::hint::black_box(e.answer_query(q.clone()).expect("query answered"));
            },
            reps,
        );
        let out = e.answer_query(q.clone()).expect("query answered");
        let results: usize = out.refinements.iter().map(|r| r.slcas.len()).sum();

        for (acc, v) in totals.iter_mut().zip([
            t_stack_slca,
            t_scan_slca,
            t_stack_refine,
            t_sle,
            t_partition,
        ]) {
            *acc += v;
        }
        n += 1;

        t.row(vec![
            wq.keywords.join(","),
            format!("{:?}", wq.kind),
            f3(t_stack_slca),
            f3(t_scan_slca),
            f3(t_stack_refine),
            f3(t_sle),
            f3(t_partition),
            format!("{results}"),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        "-".into(),
        f3(totals[0] / n as f64),
        f3(totals[1] / n as f64),
        f3(totals[2] / n as f64),
        f3(totals[3] / n as f64),
        f3(totals[4] / n as f64),
        "-".into(),
    ]);
    t.print();

    println!("\nall times in ms (hot cache, mean of {reps} runs)");
    println!(
        "Partition / scan-slca average overhead: {:.2}x (paper reports ~1.3x)",
        (totals[4] / n as f64) / (totals[1] / n as f64)
    );
}

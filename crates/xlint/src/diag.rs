//! Findings and rustc-style diagnostic rendering.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`no-panic-paths`, `lock-order`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    pub message: String,
    /// Optional remediation hint, rendered as a `= help:` line.
    pub help: String,
}

impl Finding {
    /// Renders in the rustc layout:
    ///
    /// ```text
    /// error[xlint::rule]: message
    ///   --> path:line:col
    ///    |
    /// NN | source line
    ///    |      ^
    ///    = help: hint
    /// ```
    pub fn render(&self, source_line: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[xlint::{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.path, self.line, self.col);
        let gutter = self.line.to_string().len().max(2);
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{:>gutter$} | {}", self.line, source_line);
        let caret_pad = self.col.saturating_sub(1);
        let _ = writeln!(out, "{:gutter$} | {:caret_pad$}^", "", "");
        if !self.help.is_empty() {
            let _ = writeln!(out, "{:gutter$} = help: {}", "", self.help);
        }
        out
    }
}

impl Finding {
    /// One JSON object on one line, for `--json` CI annotation output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.help)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Stable output order: path, then line, then column, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_rustc_shape() {
        let f = Finding {
            rule: "no-panic-paths",
            path: "crates/kvstore/src/wal.rs".into(),
            line: 7,
            col: 13,
            message: "`.unwrap()` on a decode path".into(),
            help: "return KvError::Corrupt instead".into(),
        };
        let r = f.render("    let x = y.unwrap();");
        assert!(r.starts_with("error[xlint::no-panic-paths]: `.unwrap()` on a decode path\n"));
        assert!(r.contains("--> crates/kvstore/src/wal.rs:7:13\n"));
        assert!(r.contains(" 7 |     let x = y.unwrap();\n"));
        assert!(r.contains("   |             ^\n"));
        assert!(r.contains("   = help: return KvError::Corrupt instead\n"));
    }

    #[test]
    fn json_rendering_escapes_and_shapes() {
        let f = Finding {
            rule: "unsafe-audit",
            path: "a\"b.rs".into(),
            line: 3,
            col: 9,
            message: "line\nbreak".into(),
            help: String::new(),
        };
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"unsafe-audit\",\"path\":\"a\\\"b.rs\",\"line\":3,\"col\":9,\
             \"message\":\"line\\nbreak\",\"help\":\"\"}"
        );
        assert_eq!(json_escape("tab\tchar\u{1}"), "tab\\tchar\\u0001");
    }

    #[test]
    fn findings_sort_stably() {
        let mk = |path: &str, line| Finding {
            rule: "r",
            path: path.into(),
            line,
            col: 1,
            message: String::new(),
            help: String::new(),
        };
        let mut v = vec![mk("b.rs", 1), mk("a.rs", 9), mk("a.rs", 2)];
        sort_findings(&mut v);
        assert_eq!(
            v.iter()
                .map(|f| (f.path.clone(), f.line))
                .collect::<Vec<_>>(),
            [("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}

//! The sharded LRU posting-list cache behind [`crate::KvBackedIndex`].
//!
//! The cache is the hot path of the concurrent query engine: every list
//! touch probes it, and under N serving threads a single cache-wide lock
//! would serialize them all. [`ShardedListCache`] therefore splits the
//! byte budget across `S` independently locked shards, selected by
//! keyword-id modulo — two threads only contend when they touch keywords
//! in the same shard, and a hit never takes more than one shard mutex.
//!
//! Policy (per shard, identical to the former monolithic cache):
//!
//! * cost of an entry is its *stored* (encoded) size — the quantity the
//!   budget protects is decode work and resident bytes, both proportional
//!   to it;
//! * eviction never invalidates handles already given out (entries are
//!   `Arc`-shared);
//! * a list larger than its shard's budget is returned uncached and
//!   re-decoded on its next touch — degraded speed, never degraded
//!   answers.
//!
//! Per-shard budgets sum exactly to the global budget (the remainder of
//! the division lands on the first shards), so `ShardedListCache::new(b,
//! s)` holds at most `b` encoded bytes no matter the shard count.

use crate::postings::PostingList;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Default shard count: enough to make contention between a handful of
/// serving threads unlikely, small enough that per-shard budgets stay
/// useful.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A snapshot of the list-cache counters, aggregated over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to touch the store.
    pub misses: u64,
    /// Lists decoded from stored pages (misses that found the key).
    pub lists_decoded: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Encoded bytes currently held by the cache.
    pub cached_bytes: usize,
}

struct CacheEntry {
    list: Arc<PostingList>,
    cost: usize,
    tick: u64,
}

/// One shard: an LRU over decoded posting lists, keyed by keyword id,
/// bounded by the summed encoded size of the entries.
struct Shard {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<u32, CacheEntry>,
    /// tick -> keyword id; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, u32>,
    hits: u64,
    misses: u64,
    lists_decoded: u64,
    evictions: u64,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            lists_decoded: 0,
            evictions: 0,
        }
    }

    /// Looks up `id`, promoting it to most-recently-used on a hit.
    fn get(&mut self, id: u32) -> Option<Arc<PostingList>> {
        match self.map.get_mut(&id) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.lru.insert(entry.tick, id);
                Some(Arc::clone(&entry.list))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly decoded list. Oversize lists (cost > budget)
    /// are not cached at all; otherwise LRU entries are evicted until
    /// the budget holds.
    fn insert(&mut self, id: u32, list: Arc<PostingList>, cost: usize) {
        self.lists_decoded += 1;
        if cost > self.budget {
            return;
        }
        if let Some(old) = self.map.remove(&id) {
            self.lru.remove(&old.tick);
            self.used -= old.cost;
        }
        while self.used + cost > self.budget {
            let (&tick, &victim) = self.lru.iter().next().expect("used > 0 implies entries");
            self.lru.remove(&tick);
            let evicted = self.map.remove(&victim).expect("lru and map agree");
            self.used -= evicted.cost;
            self.evictions += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, id);
        self.map.insert(
            id,
            CacheEntry {
                list,
                cost,
                tick: self.tick,
            },
        );
        self.used += cost;
    }

    fn add_to(&self, total: &mut CacheStats) {
        total.hits += self.hits;
        total.misses += self.misses;
        total.lists_decoded += self.lists_decoded;
        total.evictions += self.evictions;
        total.cached_bytes += self.used;
    }

    /// Panics if the shard's bookkeeping disagrees with itself.
    fn check_invariants(&self) {
        assert!(self.used <= self.budget, "used exceeds shard budget");
        assert_eq!(self.map.len(), self.lru.len(), "map/lru size mismatch");
        let mut summed = 0usize;
        for (&tick, &id) in &self.lru {
            let entry = self.map.get(&id).expect("lru id missing from map");
            assert_eq!(entry.tick, tick, "lru tick disagrees with entry tick");
            summed += entry.cost;
        }
        assert_eq!(summed, self.used, "used differs from summed entry costs");
    }
}

/// The sharded, independently locked list cache. All methods take
/// `&self`; a lookup or insert locks exactly one shard.
pub struct ShardedListCache {
    shards: Vec<Mutex<Shard>>,
    budget: usize,
}

impl ShardedListCache {
    /// A cache of `shards` shards whose per-shard budgets sum to
    /// `budget` bytes. `shards` is clamped to at least 1; a budget of 0
    /// disables caching entirely.
    pub fn new(budget: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let base = budget / n;
        let remainder = budget % n;
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < remainder))))
            .collect();
        ShardedListCache { shards, budget }
    }

    fn shard(&self, id: u32) -> &Mutex<Shard> {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Looks up `id`, promoting it to most-recently-used in its shard.
    pub fn get(&self, id: u32) -> Option<Arc<PostingList>> {
        let got = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            self.shard(id).lock().get(id) // xlint::lock(cache.shard)
        };
        if got.is_some() {
            obs::counter!("invindex_cache_hits_total").inc();
        } else {
            obs::counter!("invindex_cache_misses_total").inc();
        }
        got
    }

    /// Inserts a freshly decoded list of stored size `cost`.
    pub fn insert(&self, id: u32, list: Arc<PostingList>, cost: usize) {
        // Block scope: the metric updates below must happen outside the
        // shard lock (registration takes the registry mutex).
        let (used_delta, evicted) = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            let mut shard = self.shard(id).lock(); // xlint::lock(cache.shard)
            let (used_before, evictions_before) = (shard.used, shard.evictions);
            shard.insert(id, list, cost);
            let evicted = shard.evictions - evictions_before;
            (shard.used as i64 - used_before as i64, evicted)
        };
        obs::counter!("invindex_cache_lists_decoded_total").inc();
        if evicted > 0 {
            obs::counter!("invindex_cache_evictions_total").add(evicted);
        }
        obs::gauge!("invindex_cache_resident_bytes").add(used_delta);
    }

    /// Aggregated counters across all shards. The snapshot is *per
    /// shard* consistent; concurrent traffic may move counters between
    /// the shard reads.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            shard.lock().add_to(&mut total); // xlint::lock(cache.shard)
        }
        total
    }

    /// Per-shard counter snapshots, in shard order. The aggregated
    /// [`ShardedListCache::stats`] must equal the field-wise sum of these —
    /// the merge invariant the obs test suite checks.
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| {
                let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
                let mut one = CacheStats::default();
                shard.lock().add_to(&mut one); // xlint::lock(cache.shard)
                one
            })
            .collect()
    }

    /// The global byte budget (the per-shard budgets sum to this).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Asserts every shard's internal bookkeeping (`used` = Σ entry
    /// costs ≤ budget, `lru` and `map` agree). For tests.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            shard.lock().check_invariants(); // xlint::lock(cache.shard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(len: usize) -> Arc<PostingList> {
        let postings = (0..len)
            .map(|i| {
                crate::postings::Posting::new(
                    xmldom::Dewey::new(vec![0, i as u32]).unwrap(),
                    xmldom::NodeTypeId(0),
                )
            })
            .collect();
        Arc::new(PostingList::from_sorted(postings))
    }

    #[test]
    fn per_shard_budgets_sum_to_global() {
        for (budget, shards) in [(0, 1), (1, 8), (64, 8), (1023, 8), (1 << 20, 7)] {
            let cache = ShardedListCache::new(budget, shards);
            let per_shard: usize = cache.shards.iter().map(|s| s.lock().budget).sum();
            assert_eq!(per_shard, budget, "budget {budget} over {shards} shards");
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let cache = ShardedListCache::new(100, 0);
        assert_eq!(cache.shard_count(), 1);
        cache.insert(0, list_of(1), 10);
        assert!(cache.get(0).is_some());
    }

    #[test]
    fn keys_route_by_modulo_and_do_not_collide_across_shards() {
        let cache = ShardedListCache::new(8 * 100, 8);
        // ids 0..8 land in distinct shards; each shard holds its entry.
        for id in 0..8u32 {
            cache.insert(id, list_of(1), 50);
        }
        for id in 0..8u32 {
            assert!(cache.get(id).is_some(), "id {id} missing");
        }
        let s = cache.stats();
        assert_eq!(s.cached_bytes, 8 * 50);
        assert_eq!(s.evictions, 0);
        cache.check_invariants();
    }

    #[test]
    fn eviction_is_per_shard() {
        // Shard budget = 100: two 60-cost entries in the same shard evict,
        // entries in other shards are untouched.
        let cache = ShardedListCache::new(8 * 100, 8);
        cache.insert(0, list_of(1), 60);
        cache.insert(1, list_of(1), 60); // different shard: no eviction
        cache.insert(8, list_of(1), 60); // shard of id 0: evicts id 0
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(8).is_some());
        cache.check_invariants();
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let cache = ShardedListCache::new(1 << 20, 4);
        for id in 0..12u32 {
            assert!(cache.get(id).is_none());
            cache.insert(id, list_of(1), 10);
        }
        for id in 0..12u32 {
            assert!(cache.get(id).is_some());
        }
        let s = cache.stats();
        assert_eq!(s.misses, 12);
        assert_eq!(s.hits, 12);
        assert_eq!(s.lists_decoded, 12);
        assert_eq!(s.cached_bytes, 120);
    }
}

//! Property tests for the ranking model (§IV): structural laws that hold
//! for any candidate over any corpus.

use invindex::Index;
use proptest::prelude::*;
use std::sync::Arc;
use xrefine::{Query, Ranker, RankingConfig, RqCandidate};

fn index() -> Arc<Index> {
    Arc::new(Index::build(Arc::new(xmldom::fixtures::figure1())))
}

fn words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(
        prop_oneof![
            Just("xml"),
            Just("database"),
            Just("john"),
            Just("2003"),
            Just("online"),
            Just("fishing"),
            Just("title"),
            Just("ghost"),
        ],
        1..4,
    )
    .prop_map(|s| s.into_iter().map(|w| w.to_string()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn similarity_decays_with_dissimilarity(kws in words(), ds in 0.0f64..6.0) {
        let idx = index();
        let q = Query::from_keywords(["database", "publication"]);
        let ranker = Ranker::new(idx.as_ref(), &q, RankingConfig::default());
        let near = RqCandidate::new(kws.clone(), ds);
        let far = RqCandidate::new(kws, ds + 1.0);
        // decay^(ds) >= decay^(ds+1) and the base is identical
        prop_assert!(ranker.similarity(&near) >= ranker.similarity(&far) - 1e-12);
    }

    #[test]
    fn scores_are_finite_and_dependence_nonnegative(kws in words(), ds in 0.0f64..6.0) {
        let idx = index();
        let q = Query::from_keywords(["xml", "john"]);
        let ranker = Ranker::new(idx.as_ref(), &q, RankingConfig::default());
        let cand = RqCandidate::new(kws, ds);
        prop_assert!(ranker.similarity(&cand).is_finite());
        let dep = ranker.dependence(&cand);
        prop_assert!(dep.is_finite() && dep >= 0.0);
        prop_assert!(ranker.rank(&cand).is_finite());
    }

    #[test]
    fn rank_is_linear_in_alpha_beta(kws in words(), ds in 0.0f64..4.0) {
        let idx = index();
        let q = Query::from_keywords(["xml", "2003"]);
        let cand = RqCandidate::new(kws, ds);
        let base = Ranker::new(idx.as_ref(), &q, RankingConfig::with_weights(1.0, 1.0)).rank(&cand);
        let double = Ranker::new(idx.as_ref(), &q, RankingConfig::with_weights(2.0, 2.0)).rank(&cand);
        prop_assert!((double - 2.0 * base).abs() < 1e-9);
        let sim = Ranker::new(idx.as_ref(), &q, RankingConfig::with_weights(1.0, 0.0)).rank(&cand);
        let dep = Ranker::new(idx.as_ref(), &q, RankingConfig::with_weights(0.0, 1.0)).rank(&cand);
        prop_assert!((base - (sim + dep)).abs() < 1e-9);
    }

    #[test]
    fn rank_all_is_a_permutation_sorted_descending(
        sets in proptest::collection::vec((words(), 0.0f64..4.0), 1..6)
    ) {
        let idx = index();
        let q = Query::from_keywords(["database", "publication"]);
        let ranker = Ranker::new(idx.as_ref(), &q, RankingConfig::default());
        let candidates: Vec<RqCandidate> = sets
            .into_iter()
            .map(|(kws, ds)| RqCandidate::new(kws, ds))
            .collect();
        let n = candidates.len();
        let ranked = ranker.rank_all(candidates.clone());
        prop_assert_eq!(ranked.len(), n);
        prop_assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        // permutation: every input appears exactly once
        for c in &candidates {
            prop_assert_eq!(
                ranked.iter().filter(|(r, _)| r == c).count(),
                candidates.iter().filter(|x| *x == c).count()
            );
        }
        // scores are reproducible
        for (c, score) in &ranked {
            prop_assert!((ranker.rank(c) - score).abs() < 1e-12);
        }
    }
}

//! Live (updatable) engine: an [`XRefineEngine`] kept current over an
//! online-maintained store.
//!
//! [`LiveEngine`] pairs a [`MaintIndex`] — the WAL-backed updating store
//! with epoch/snapshot reader handoff — with a republished query engine.
//! Readers call [`LiveEngine::engine`] and get an `Arc` to an engine
//! pinned to one index generation; they are never blocked by a
//! committing writer. After each committed transaction the writer
//! rebuilds the engine façade from the fresh snapshot (the vocabulary
//! trigram index is the only derived state) and swaps the shared
//! pointer.
//!
//! Lock order: `MaintIndex` internals take `maint.writer` (9) and
//! `maint.epoch` (10) and release both before this module touches
//! `engine.epoch` (11), so the hierarchy stays strictly increasing. The
//! generation guard on the swap makes concurrent `update` calls safe:
//! a commit that loses the race to republish cannot roll the engine
//! back to an older snapshot.

use crate::engine::{EngineConfig, XRefineEngine};
use invindex::maint::{MaintIndex, MaintOp, MaintReport};
use kvstore::{Result, Vfs};
use obs::lockrank;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An updatable engine over a maintained store.
pub struct LiveEngine {
    maint: MaintIndex,
    config: EngineConfig,
    /// Generation-stamped published engine. A plain `std` mutex held
    /// only for pointer reads and guarded swaps; poisoning is harmless
    /// (the protected state is a complete, immutable snapshot pair) so
    /// a poisoned lock is recovered, not propagated.
    engine: Mutex<(u64, Arc<XRefineEngine>)>,
}

impl LiveEngine {
    /// Opens (or recovers) the maintained store at `base` and builds the
    /// initial engine from its current snapshot.
    pub fn open(base: &Path, config: EngineConfig) -> Result<Self> {
        Self::from_maint(MaintIndex::open(base)?, config)
    }

    /// As [`LiveEngine::open`], on an explicit VFS (tests, fault
    /// injection).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, base: &Path, config: EngineConfig) -> Result<Self> {
        Self::from_maint(MaintIndex::open_with_vfs(vfs, base)?, config)
    }

    fn from_maint(maint: MaintIndex, config: EngineConfig) -> Result<Self> {
        let snap = maint.snapshot();
        let gen = snap.generation();
        let engine = Arc::new(XRefineEngine::from_reader(snap, config.clone()));
        Ok(LiveEngine {
            maint,
            config,
            engine: Mutex::new((gen, engine)),
        })
    }

    /// The currently published engine. The returned `Arc` stays valid —
    /// and keeps answering from its pinned generation — across any
    /// number of subsequent commits.
    pub fn engine(&self) -> Arc<XRefineEngine> {
        let _rank = lockrank::acquire(lockrank::rank::ENGINE_EPOCH, "engine.epoch");
        let slot = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&slot.1)
    }

    /// Generation of the currently published engine.
    pub fn generation(&self) -> u64 {
        let _rank = lockrank::acquire(lockrank::rank::ENGINE_EPOCH, "engine.epoch");
        self.engine.lock().unwrap_or_else(|e| e.into_inner()).0
    }

    /// Commits a maintenance transaction and republishes the engine.
    pub fn update(&self, ops: &[MaintOp]) -> Result<MaintReport> {
        let report = self.maint.commit(ops)?;
        self.republish();
        Ok(report)
    }

    /// Folds the WAL overlay into the base store; republishes only if a
    /// compaction actually ran.
    pub fn compact(&self) -> Result<bool> {
        let ran = self.maint.compact()?;
        if ran {
            self.republish();
        }
        Ok(ran)
    }

    /// Compacts once the overlay holds at least `threshold` entries.
    pub fn compact_if_needed(&self, threshold: usize) -> Result<bool> {
        let ran = self.maint.compact_if_needed(threshold)?;
        if ran {
            self.republish();
        }
        Ok(ran)
    }

    /// The underlying maintained index (sequence, records, metrics).
    pub fn maint(&self) -> &MaintIndex {
        &self.maint
    }

    /// Rebuilds the engine façade from the latest snapshot and swaps it
    /// in, unless a racing caller already published something newer.
    fn republish(&self) {
        let snap = self.maint.snapshot();
        let gen = snap.generation();
        let fresh = Arc::new(XRefineEngine::from_reader(snap, self.config.clone()));
        let _rank = lockrank::acquire(lockrank::rank::ENGINE_EPOCH, "engine.epoch");
        let mut slot = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        if gen > slot.0 {
            *slot = (gen, fresh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invindex::{build_streaming, persist};
    use kvstore::{DiskKv, FaultVfs, KvStore};
    use std::path::PathBuf;

    const CORPUS: &str = "<bib>\
        <paper><title>xml keyword search</title></paper>\
        <paper><title>query refinement</title></paper>\
        </bib>";

    fn fresh() -> (Arc<dyn Vfs>, PathBuf) {
        let vfs = FaultVfs::new().as_dyn();
        let base = PathBuf::from("/live/store.db");
        let built = build_streaming(CORPUS, 1).unwrap();
        let mut disk = DiskKv::open_with_vfs(&vfs, &base.with_extension("db")).unwrap();
        persist::persist(&built, &mut disk).unwrap();
        disk.sync().unwrap();
        (vfs, base)
    }

    #[test]
    fn update_republishes_while_pinned_readers_keep_their_generation() {
        let (vfs, base) = fresh();
        let live = LiveEngine::open_with_vfs(vfs, &base, EngineConfig::default()).unwrap();
        let pinned = live.engine();
        let before = live.generation();

        let report = live
            .update(&[MaintOp::Add {
                fragment: "<paper><title>epoch handoff</title></paper>".into(),
            }])
            .unwrap();
        assert_eq!(report.added, 1);
        assert!(live.generation() > before, "engine generation must advance");

        // The pinned engine still answers from the pre-update corpus,
        // where "epoch" has no meaningful result…
        assert!(pinned.answer("epoch").unwrap().needs_refinement());
        // …while a fresh handle sees the new record directly.
        assert!(live.engine().answer("epoch").unwrap().original_ok);
    }

    #[test]
    fn compaction_republishes_without_changing_answers() {
        let (vfs, base) = fresh();
        let live = LiveEngine::open_with_vfs(vfs, &base, EngineConfig::default()).unwrap();
        live.update(&[MaintOp::Add {
            fragment: "<paper><title>compaction test</title></paper>".into(),
        }])
        .unwrap();
        assert!(live.maint().overlay_len() > 0);
        assert!(live.compact().unwrap());
        assert_eq!(live.maint().overlay_len(), 0);
        assert!(live.engine().answer("compaction").unwrap().original_ok);
        // A second compact with an empty overlay is a no-op.
        assert!(!live.compact().unwrap());
    }
}

//! Fuzz-style sweep over malformed inputs: the structural scanner must
//! never panic, and must accept exactly the documents the DOM parser
//! accepts (below the scanner's depth bound, which no input here
//! approaches).
//!
//! Inputs are seeded deterministic mutations of valid documents — byte
//! substitutions from a markup-heavy pool, truncations, duplications,
//! and splices — plus fully random character soup. Every input is run
//! through both `parse_document` and `check_document` and the verdicts
//! compared.

use xmldom::{check_document, parse_document};

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Characters that stress the markup grammar: delimiters, entity
/// syntax, quote styles, name characters, and some multi-byte text.
const POOL: &[char] = &[
    '<', '>', '&', ';', '"', '\'', '!', '?', '/', '=', '[', ']', '-', '.', ':', '_', '#', 'a', 'b',
    'x', 'Z', '0', '9', ' ', '\n', '\t', 'é', '中',
];

const SEEDS: &[&str] = &[
    "<doc><a x=\"1\">hi &amp; bye</a><b/><c>t</c></doc>",
    "<r><![CDATA[raw <markup> here]]><!-- note --><p>&#65;&#x42;</p></r>",
    "<?xml version=\"1.0\"?><root attr='v'>mixed <i>in</i> line</root>",
    "<a><b><c><d>deep</d></c></b></a>",
    "<only/>",
];

/// Both implementations must agree on acceptance, and neither may
/// panic. Returns whether the input was accepted.
fn verdicts_agree(input: &str) -> bool {
    let parsed = parse_document(input).is_ok();
    let scanned = check_document(input).is_ok();
    assert_eq!(
        parsed,
        scanned,
        "acceptance divergence on input ({} bytes): {:?}",
        input.len(),
        input
    );
    parsed
}

fn mutate(rng: &mut Rng, base: &str) -> String {
    let chars: Vec<char> = base.chars().collect();
    if chars.is_empty() {
        return POOL[rng.below(POOL.len())].to_string();
    }
    match rng.below(4) {
        // substitute one character
        0 => {
            let mut c = chars.clone();
            let i = rng.below(c.len());
            c[i] = POOL[rng.below(POOL.len())];
            c.into_iter().collect()
        }
        // truncate at a random character boundary
        1 => chars[..rng.below(chars.len() + 1)].iter().collect(),
        // insert a character
        2 => {
            let mut c = chars.clone();
            let i = rng.below(c.len() + 1);
            c.insert(i, POOL[rng.below(POOL.len())]);
            c.into_iter().collect()
        }
        // splice: duplicate a random slice somewhere else
        _ => {
            let a = rng.below(chars.len());
            let b = a + rng.below(chars.len() - a + 1);
            let at = rng.below(chars.len() + 1);
            let mut c = chars.clone();
            for (k, &ch) in chars[a..b].iter().enumerate() {
                c.insert(at + k, ch);
            }
            c.into_iter().collect()
        }
    }
}

#[test]
fn mutated_documents_never_panic_and_verdicts_agree() {
    let mut rng = Rng(0xF0_55ED);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for seed in SEEDS {
        // Walk mutation chains: each round mutates either the pristine
        // seed or the previous mutant, so damage accumulates.
        let mut current = (*seed).to_string();
        for round in 0..600 {
            let base = if round % 5 == 0 {
                seed
            } else {
                current.as_str()
            };
            current = mutate(&mut rng, base);
            if verdicts_agree(&current) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    // Sanity: the sweep must actually exercise both outcomes.
    assert!(accepted > 50, "only {accepted} mutants accepted");
    assert!(rejected > 500, "only {rejected} mutants rejected");
}

#[test]
fn random_character_soup_never_panics() {
    let mut rng = Rng(0x5011_D00D);
    for _ in 0..2000 {
        let len = rng.below(60);
        let soup: String = (0..len).map(|_| POOL[rng.below(POOL.len())]).collect();
        verdicts_agree(&soup);
    }
}

#[test]
fn pathological_prefixes_never_panic() {
    // Truncations of every tricky construct at every byte boundary.
    let constructs = [
        "<doc><![CDATA[x]]></doc>",
        "<doc><!-- c --></doc>",
        "<!DOCTYPE d [ <!ELEMENT x (y)> ]><d/>",
        "<doc a=\"&#x1F600;\"/>",
        "<doc>&#xZZ;</doc>",
        "<a b='c'></a >",
    ];
    for c in constructs {
        for end in 0..=c.len() {
            if let Some(prefix) = c.get(..end) {
                verdicts_agree(prefix);
            }
        }
    }
}

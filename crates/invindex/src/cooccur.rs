//! Co-occurrence frequencies `f^T_{ki,kj}` (Formula 7).
//!
//! The paper precomputes a *co-occur frequency table* with worst-case
//! space `O(K^2 · T)` (§VII). We instead derive each requested entry from
//! the inverted lists — the set of `T`-typed nodes containing a keyword is
//! the distinct-`T`-ancestor projection of its posting list, and the
//! co-occurrence count is the size of the intersection of two such sorted
//! sets — and memoize both the projections and the final counts. This
//! keeps identical query-time semantics while avoiding the quadratic
//! build; `DESIGN.md` records the substitution and the ablation bench
//! measures the trade-off.

use crate::reader::{typed_ancestors_in, IndexReader};
use crate::stats::KeywordId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Dewey, NodeTypeId};

/// Memo of distinct `T`-typed ancestor sets per `(keyword, type)`, with
/// content-level dedup: different `(keyword, type)` pairs frequently
/// project to the *same* ancestor set (keywords confined to one shared
/// subtree shape), so equal vectors are stored once and shared by `Arc`.
/// Hits land on `compress_dedup_hits_total`.
#[derive(Default)]
struct AncestorMemo {
    by_key: HashMap<(KeywordId, NodeTypeId), Arc<Vec<Dewey>>>,
    /// Content-hash buckets over the memoized vectors; probed on insert
    /// so an equal projection is shared rather than duplicated.
    by_content: HashMap<u64, Vec<Arc<Vec<Dewey>>>>,
}

impl AncestorMemo {
    fn content_hash(v: &[Dewey]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// Inserts `v` under `key`, sharing an existing equal vector if one
    /// is already memoized. Returns the canonical (possibly shared) Arc.
    fn insert_deduped(&mut self, key: (KeywordId, NodeTypeId), v: Vec<Dewey>) -> Arc<Vec<Dewey>> {
        let hash = Self::content_hash(&v);
        let bucket = self.by_content.entry(hash).or_default();
        let canonical = match bucket.iter().find(|c| ***c == v) {
            Some(existing) => {
                obs::counter!("compress_dedup_hits_total").inc();
                Arc::clone(existing)
            }
            None => {
                let fresh = Arc::new(v);
                bucket.push(Arc::clone(&fresh));
                fresh
            }
        };
        self.by_key.insert(key, Arc::clone(&canonical));
        canonical
    }
}

/// Memoizing provider of `f^T_{ki,kj}`.
#[derive(Default)]
pub struct CoOccurrence {
    ancestors: Mutex<AncestorMemo>,
    counts: Mutex<HashMap<(NodeTypeId, KeywordId, KeywordId), u64>>,
}

impl CoOccurrence {
    pub fn new() -> Self {
        Self::default()
    }

    /// `f^T_{ki,kj}`: number of `T`-typed nodes whose subtree contains
    /// both keywords. Symmetric in `ki`/`kj`. Storage errors in the
    /// reader degrade to an empty ancestor set (count 0) — the value
    /// only weights ranking.
    pub fn co_occur(
        &self,
        reader: &dyn IndexReader,
        t: NodeTypeId,
        ki: KeywordId,
        kj: KeywordId,
    ) -> u64 {
        let (a, b) = if ki <= kj { (ki, kj) } else { (kj, ki) };
        {
            let _rank =
                obs::lockrank::acquire(obs::lockrank::rank::COOCCUR_COUNTS, "cooccur.counts");
            // xlint::lock(cooccur.counts)
            if let Some(&n) = self.counts.lock().get(&(t, a, b)) {
                return n;
            }
        }
        let la = self.typed_ancestors(reader, a, t);
        let n = if a == b {
            la.len() as u64
        } else {
            let lb = self.typed_ancestors(reader, b, t);
            sorted_intersection_size(&la, &lb)
        };
        {
            let _rank =
                obs::lockrank::acquire(obs::lockrank::rank::COOCCUR_COUNTS, "cooccur.counts");
            self.counts.lock().insert((t, a, b), n); // xlint::lock(cooccur.counts)
        }
        n
    }

    fn typed_ancestors(
        &self,
        reader: &dyn IndexReader,
        k: KeywordId,
        t: NodeTypeId,
    ) -> Arc<Vec<Dewey>> {
        {
            let _rank =
                obs::lockrank::acquire(obs::lockrank::rank::COOCCUR_ANCESTORS, "cooccur.ancestors");
            // xlint::lock(cooccur.ancestors)
            if let Some(v) = self.ancestors.lock().by_key.get(&(k, t)) {
                return Arc::clone(v);
            }
        }
        let postings = reader.list_handle_by_id(k).unwrap_or_default();
        let v = typed_ancestors_in(reader.document(), &postings, t);
        {
            let _rank =
                obs::lockrank::acquire(obs::lockrank::rank::COOCCUR_ANCESTORS, "cooccur.ancestors");
            // xlint::lock(cooccur.ancestors)
            self.ancestors.lock().insert_deduped((k, t), v)
        }
    }
}

fn sorted_intersection_size(a: &[Dewey], b: &[Dewey]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn intersection_size_basics() {
        let a = vec![d("0.0"), d("0.1"), d("0.3")];
        let b = vec![d("0.1"), d("0.2"), d("0.3")];
        assert_eq!(sorted_intersection_size(&a, &b), 2);
        assert_eq!(sorted_intersection_size(&a, &[]), 0);
        assert_eq!(sorted_intersection_size(&a, &a), 3);
    }

    #[test]
    fn equal_projections_share_one_allocation() {
        let mut memo = AncestorMemo::default();
        let k0 = KeywordId(0);
        let k1 = KeywordId(1);
        let t = NodeTypeId(0);
        let a = memo.insert_deduped((k0, t), vec![d("0.0"), d("0.2")]);
        let b = memo.insert_deduped((k1, t), vec![d("0.0"), d("0.2")]);
        assert!(Arc::ptr_eq(&a, &b), "equal vectors must be shared");
        let c = memo.insert_deduped((KeywordId(2), t), vec![d("0.1")]);
        assert!(!Arc::ptr_eq(&a, &c));
        // lookups resolve to the canonical Arc
        assert!(Arc::ptr_eq(memo.by_key.get(&(k1, t)).unwrap(), &a));
    }
}

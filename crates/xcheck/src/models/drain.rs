//! Graceful-drain handshake (production: `xserve` server lifecycle —
//! the `closed` flag plus the bounded work queue).
//!
//! Admission happens under the queue lock and is refused once `closed`
//! is set; the drainer sets `closed` *first* and only then drains the
//! queue, so every admitted job is executed either by a worker or by the
//! final drain. The seeded bug drains before closing: a job admitted in
//! the window between the drain and the close is silently dropped.

use crate::sched::{explore, Config, Outcome};
use crate::shim::{XAtomicBool, XAtomicU64, XMutex};

use super::Bug;

pub struct State {
    closed: XAtomicBool,
    queue: XMutex<Vec<u64>>,
    admitted: XAtomicU64,
    executed: XAtomicU64,
    bug: Bug,
}

fn producer(s: &State) {
    let mut q = s.queue.lock();
    // Admission check under the queue lock, as in `serve::queue`.
    if !s.closed.load() {
        q.push(1);
        s.admitted.fetch_add(1);
    }
}

fn worker(s: &State) {
    let job = s.queue.lock().pop();
    if job.is_some() {
        s.executed.fetch_add(1);
    }
}

fn drainer(s: &State) {
    match s.bug {
        Bug::None => {
            // Production order: stop admissions, then drain the rest.
            s.closed.store(true);
            let mut q = s.queue.lock();
            while q.pop().is_some() {
                s.executed.fetch_add(1);
            }
        }
        Bug::Seeded => {
            // Seeded bug: drain first — a job admitted after the drain
            // but before the close is never executed.
            {
                let mut q = s.queue.lock();
                while q.pop().is_some() {
                    s.executed.fetch_add(1);
                }
            }
            s.closed.store(true);
        }
    }
}

/// Explores the producer/worker/drainer handshake; the invariant is the
/// drain guarantee: every admitted job is executed.
pub fn check(bug: Bug) -> Outcome {
    explore(
        &Config::default(),
        move || State {
            closed: XAtomicBool::new(false),
            queue: XMutex::new(Vec::new()),
            admitted: XAtomicU64::new(0),
            executed: XAtomicU64::new(0),
            bug,
        },
        &[producer, worker, drainer],
        |s| {
            let admitted = s.admitted.load();
            let executed = s.executed.load();
            if executed == admitted {
                Ok(())
            } else {
                Err(format!(
                    "drain guarantee broken: admitted {admitted}, executed {executed}"
                ))
            }
        },
    )
}

//! Property tests for the XML substrate: parser round-trips, Dewey
//! algebra laws, and tokenizer invariants.

use proptest::prelude::*;
use xmldom::{parse_document, tokenize, Dewey, DocumentBuilder};

/// Strategy: a random tree shape encoded as nested (tag, text, children).
#[derive(Debug, Clone)]
struct TreeSpec {
    tag: String,
    text: String,
    children: Vec<TreeSpec>,
}

fn tag_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes XML-hostile characters to exercise escaping.
    proptest::collection::vec(
        prop_oneof![
            Just("word".to_string()),
            Just("x<y".to_string()),
            Just("a&b".to_string()),
            Just("\"q\"".to_string()),
            Just("ünïcode".to_string()),
            Just("2003".to_string()),
        ],
        0..3,
    )
    .prop_map(|v| v.join(" "))
}

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = (tag_strategy(), text_strategy()).prop_map(|(tag, text)| TreeSpec {
        tag,
        text,
        children: Vec::new(),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            tag_strategy(),
            text_strategy(),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, text, children)| TreeSpec {
                tag,
                text,
                children,
            })
    })
}

fn build(spec: &TreeSpec, b: &mut DocumentBuilder) {
    b.open_element(&spec.tag);
    if !spec.text.is_empty() {
        b.text(&spec.text);
    }
    for c in &spec.children {
        build(c, b);
    }
    b.close_element();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_parse_roundtrip_preserves_structure(spec in tree_strategy()) {
        let mut b = DocumentBuilder::new();
        build(&spec, &mut b);
        let doc = b.finish();
        let xml = doc.to_xml();
        let doc2 = parse_document(&xml).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for ((_, a), (id2, b2)) in doc.nodes().zip(doc2.nodes()) {
            prop_assert_eq!(&a.dewey, &b2.dewey);
            prop_assert_eq!(
                doc.symbols().resolve(a.tag),
                doc2.tag_name(id2)
            );
            // text survives modulo whitespace normalization
            prop_assert_eq!(
                tokenize(&a.text),
                tokenize(&b2.text)
            );
        }
    }

    #[test]
    fn dewey_lca_laws(
        a in proptest::collection::vec(0u32..4, 0..5),
        b in proptest::collection::vec(0u32..4, 0..5),
    ) {
        let mk = |mut v: Vec<u32>| { let mut c = vec![0]; c.append(&mut v); Dewey::new(c).unwrap() };
        let x = mk(a);
        let y = mk(b);
        let l = x.lca(&y).unwrap();
        // commutative
        prop_assert_eq!(&l, &y.lca(&x).unwrap());
        // the LCA is an ancestor-or-self of both
        prop_assert!(l.is_ancestor_or_self_of(&x));
        prop_assert!(l.is_ancestor_or_self_of(&y));
        // idempotent
        prop_assert_eq!(&x.lca(&x).unwrap(), &x);
        // deepest: the LCA's child toward x is not an ancestor of y
        if l != x && l != y {
            let next = Dewey::new(x.components()[..l.len() + 1].to_vec()).unwrap();
            prop_assert!(!next.is_ancestor_or_self_of(&y));
        }
        // order-preserving byte encoding agrees with component order
        prop_assert_eq!(
            x.to_order_preserving_bytes().cmp(&y.to_order_preserving_bytes()),
            x.cmp(&y)
        );
    }

    #[test]
    fn tokenizer_is_idempotent_and_lowercase(s in "\\PC{0,40}") {
        let once = tokenize(&s);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(&once, &again);
        for t in &once {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,120}") {
        let _ = parse_document(&s);
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("text".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<![CDATA[d]]>".to_string()),
                Just("&amp;".to_string()),
                Just("<?pi?>".to_string()),
                Just("</".to_string()),
                Just("<".to_string()),
            ],
            0..12
        )
    ) {
        let _ = parse_document(&parts.concat());
    }
}

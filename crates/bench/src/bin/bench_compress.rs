//! Compressed-store bench: format v4 (blocked compressed lists, DAG
//! document, packed stats) against v3 (flat) on the DBLP-style corpus.
//!
//! Builds one index, persists it at both format versions, and drives an
//! identical query workload through a [`KvBackedIndex`] over each store
//! with the same fixed cache byte budget. Emits
//! `results/BENCH_compress.json` and exits non-zero when any acceptance
//! gate fails:
//!
//! 1. **size**: the v4 store is at least 2x smaller than the v3 store;
//! 2. **scan neutrality**: `invindex_scan_advances_total` is *equal*
//!    across the two runs — compression must not change what the
//!    algorithms read, only how it is stored;
//! 3. **latency**: the algorithm-phase (scan) p99 over the v4 store is
//!    within 5% of v3, plus a 2 ms scheduler-noise floor.
//!
//! The `ShardedListCache` hit rate at the shared byte budget is
//! reported (compressed entries cost fewer cache bytes, so more lists
//! stay resident) along with the `compress_*` counter deltas.
//!
//! Knobs (environment): `COMPRESS_BENCH_FRACTION` of the standard DBLP
//! corpus (default 0.1), `COMPRESS_BENCH_ROUNDS` workload repetitions
//! (default 3), `COMPRESS_BENCH_CACHE_BYTES` cache budget (default
//! 32768).

use bench::{dblp_config, percentile_of};
use datagen::{generate_workload, write_dblp_xml, WorkloadConfig};
use invindex::reader::IndexReader;
use invindex::{build_streaming, persist, CacheStats, Index, KvBackedIndex};
use kvstore::{KvStore, MemKv};
use std::sync::Arc;
use std::time::Duration;
use xrefine::{EngineConfig, Query, XRefineEngine};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Logical store size: every key and value byte, which is what any
/// page-packed backend stores and caches.
fn store_bytes(store: &dyn KvStore) -> usize {
    store
        .scan_range(b"", None)
        .expect("dump store")
        .iter()
        .map(|(k, v)| k.len() + v.len())
        .sum()
}

struct Run {
    advances: u64,
    random_accesses: u64,
    scan_total: u64,
    algo_lat: Vec<Duration>,
    total_lat: Vec<Duration>,
    cache: CacheStats,
    metrics: obs::MetricsSnapshot,
}

/// Persists `built` at `version`, then answers `rounds` passes of the
/// workload over a cache-budgeted [`KvBackedIndex`] on that store.
fn run(built: &Index, version: u64, workload: &[Vec<String>], rounds: usize, budget: usize) -> Run {
    let mut store = MemKv::new();
    persist::persist_versioned(built, &mut store, version).expect("persist");
    let index = Arc::new(
        KvBackedIndex::open(Box::new(store))
            .expect("open store")
            .with_cache_budget(budget),
    );
    let engine = XRefineEngine::from_reader(
        Arc::clone(&index) as Arc<dyn IndexReader>,
        EngineConfig::default(),
    );

    let before = obs::global().snapshot();
    let mut advances = 0u64;
    let mut random_accesses = 0u64;
    let mut algo_lat = Vec::new();
    let mut total_lat = Vec::new();
    for _ in 0..rounds {
        for keywords in workload {
            let (outcome, timings) = engine
                .answer_query_timed(Query::from_keywords(keywords.iter().cloned()))
                .expect("bench query");
            advances += outcome.advances;
            random_accesses += outcome.random_accesses;
            algo_lat.push(timings.algorithm);
            total_lat.push(timings.total());
        }
    }
    let metrics = obs::global().snapshot().delta_since(&before);
    let scan_total = metrics
        .counters
        .get("invindex_scan_advances_total")
        .copied()
        .unwrap_or(0);
    Run {
        advances,
        random_accesses,
        scan_total,
        algo_lat,
        total_lat,
        cache: index.cache_stats(),
        metrics,
    }
}

fn hit_rate(c: &CacheStats) -> f64 {
    let total = c.hits + c.misses;
    if total == 0 {
        0.0
    } else {
        c.hits as f64 / total as f64
    }
}

fn latency_json(lat: &[Duration]) -> String {
    format!(
        "{{\"samples\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        lat.len(),
        ms(percentile_of(lat, 0.50)),
        ms(percentile_of(lat, 0.99)),
    )
}

fn cache_json(c: &CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"lists_decoded\": {}, \
         \"evictions\": {}, \"resident_bytes\": {}}}",
        c.hits,
        c.misses,
        hit_rate(c),
        c.lists_decoded,
        c.evictions,
        c.cached_bytes,
    )
}

fn main() {
    let fraction = env_f64("COMPRESS_BENCH_FRACTION", 0.1);
    let rounds = env_usize("COMPRESS_BENCH_ROUNDS", 3).max(1);
    let budget = env_usize("COMPRESS_BENCH_CACHE_BYTES", 32 * 1024);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_compress.json".to_string());

    let cfg = dblp_config().scaled(fraction);
    let xml = String::from_utf8(write_dblp_xml(&cfg, Vec::new()).expect("render corpus"))
        .expect("utf8 corpus");
    let built = build_streaming(&xml, 4).expect("streaming ingest");
    let workload: Vec<Vec<String>> = generate_workload(
        built.document(),
        &WorkloadConfig {
            per_kind: 6,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    println!(
        "corpus: {} authors ({} nodes); workload: {} queries x {rounds} round(s); \
         cache budget {budget} B",
        cfg.authors,
        built.document().len(),
        workload.len()
    );

    // Store sizes at both versions.
    let sized = |version: u64| -> usize {
        let mut store = MemKv::new();
        persist::persist_versioned(&built, &mut store, version).expect("persist");
        store_bytes(&store)
    };
    let v3_bytes = sized(persist::V3_FORMAT_VERSION);
    let v4_bytes = sized(persist::FORMAT_VERSION);
    let size_ratio = v3_bytes as f64 / v4_bytes.max(1) as f64;
    println!("store size: v3 {v3_bytes} B, v4 {v4_bytes} B ({size_ratio:.2}x smaller)");

    let r3 = run(
        &built,
        persist::V3_FORMAT_VERSION,
        &workload,
        rounds,
        budget,
    );
    let r4 = run(&built, persist::FORMAT_VERSION, &workload, rounds, budget);
    let p99_v3 = percentile_of(&r3.algo_lat, 0.99);
    let p99_v4 = percentile_of(&r4.algo_lat, 0.99);
    println!(
        "scan advances: v3 {} v4 {} (counter delta v3 {} v4 {}); \
         algorithm-phase p99: v3 {:.3} ms, v4 {:.3} ms",
        r3.advances,
        r4.advances,
        r3.scan_total,
        r4.scan_total,
        ms(p99_v3),
        ms(p99_v4),
    );
    println!(
        "cache @ {budget} B: v3 hit rate {:.3} ({} B resident), v4 hit rate {:.3} ({} B resident)",
        hit_rate(&r3.cache),
        r3.cache.cached_bytes,
        hit_rate(&r4.cache),
        r4.cache.cached_bytes,
    );
    let compress_counters: Vec<String> = r4
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("compress_"))
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();

    let version_json = |r: &Run, bytes: usize, p99: Duration| -> String {
        format!(
            "{{\"store_bytes\": {bytes}, \"advances\": {}, \"random_accesses\": {}, \
             \"scan_advances_total\": {}, \"algorithm_phase\": {}, \"algorithm_phase_p99_ms\": {:.3}, \
             \"query_total\": {}, \"cache\": {}}}",
            r.advances,
            r.random_accesses,
            r.scan_total,
            latency_json(&r.algo_lat),
            ms(p99),
            latency_json(&r.total_lat),
            cache_json(&r.cache),
        )
    };
    let json = format!(
        "{{\n  \"corpus_authors\": {},\n  \"corpus_nodes\": {},\n  \"workload_queries\": {},\n  \
         \"rounds\": {rounds},\n  \"cache_budget_bytes\": {budget},\n  \
         \"size_ratio_v3_over_v4\": {size_ratio:.3},\n  \
         \"v3\": {},\n  \"v4\": {},\n  \
         \"cache_hit_rate_lift\": {:.4},\n  \
         \"compress_counters\": {{{}}}\n}}\n",
        cfg.authors,
        built.document().len(),
        workload.len(),
        version_json(&r3, v3_bytes, p99_v3),
        version_json(&r4, v4_bytes, p99_v4),
        hit_rate(&r4.cache) - hit_rate(&r3.cache),
        compress_counters.join(", "),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_compress.json");
    println!("wrote {out_path}");

    let mut failed = false;
    if size_ratio < 2.0 {
        eprintln!("SIZE GATE VIOLATION: v4 only {size_ratio:.2}x smaller than v3 (need >= 2x)");
        failed = true;
    }
    if r3.advances != r4.advances || r3.scan_total != r4.scan_total {
        eprintln!(
            "SCAN NEUTRALITY VIOLATION: advances v3 {}/{} vs v4 {}/{}",
            r3.advances, r3.scan_total, r4.advances, r4.scan_total
        );
        failed = true;
    }
    let ceiling = Duration::from_secs_f64(p99_v3.as_secs_f64() * 1.05) + Duration::from_millis(2);
    if p99_v4 > ceiling {
        eprintln!(
            "SCAN LATENCY VIOLATION: v4 algorithm-phase p99 {:.3} ms > v3 {:.3} ms x 1.05 + 2 ms",
            ms(p99_v4),
            ms(p99_v3)
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

//! Cooperative token-passing scheduler with DFS schedule exploration.
//!
//! Model threads run on real OS threads, but exactly one is runnable at
//! a time: every shim operation ([`crate::shim`]) is a yield point that
//! hands the token back to the controller, which decides who runs next.
//! The controller records each decision where more than one thread was
//! runnable, and after the schedule completes it backtracks depth-first
//! to the deepest decision with an untried alternative, replaying the
//! prefix and diverging there — until the bounded space is exhausted or
//! a violation is found.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Exploration bounds. Both are safety nets: the shipped models exhaust
/// their interleaving space well inside the defaults.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum scheduling decisions in a single schedule before the run
    /// is reported as a step-bound violation (runaway-loop guard).
    pub max_steps: usize,
    /// Maximum schedules to explore before giving up unexhausted.
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 2_000,
            max_schedules: 100_000,
        }
    }
}

/// What went wrong on the violating schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A model thread panicked (an in-thread assertion fired).
    Panic,
    /// Unfinished threads remained but none was runnable.
    Deadlock,
    /// The final-state invariant closure returned `Err`.
    Invariant,
    /// A single schedule exceeded `max_steps` decisions.
    StepBound,
}

/// A counterexample: the kind of failure, its message, and the exact
/// thread-id sequence that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: Kind,
    pub detail: String,
    /// Thread id chosen at each scheduling step, in order.
    pub schedule: Vec<usize>,
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// `true` iff the whole bounded space was explored with no violation.
    pub exhausted: bool,
    /// First violation found, with its reproducing schedule.
    pub violation: Option<Violation>,
}

impl Outcome {
    /// Convenience for asserting in tests.
    pub fn passed(&self) -> bool {
        self.exhausted && self.violation.is_none()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(usize),
    Finished,
}

struct Inner {
    /// Which thread currently holds the execution token.
    active: Option<usize>,
    status: Vec<Status>,
    lock_owner: HashMap<usize, usize>,
    abort: bool,
    panic_msg: Option<String>,
}

/// Shared between the controller and the model threads of one schedule.
pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Panic payload used to unwind model threads out of their wait loops
/// when the controller aborts a schedule; never reported as a violation.
struct Aborted;

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    sched: Arc<Scheduler>,
    id: usize,
}

/// Runs `f` with the calling thread's checker context, if installed.
/// Shims fall back to plain operations when this returns `None`-path.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

static NEXT_LOCK_ID: AtomicUsize = AtomicUsize::new(0);

/// Allocates a process-unique id for one `XMutex` instance.
pub(crate) fn fresh_lock_id() -> usize {
    NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed)
}

impl Ctx {
    /// One scheduling point: release the token and wait to be rescheduled.
    pub(crate) fn yield_now(&self) {
        let mut g = self.sched.inner.lock().expect("scheduler state");
        debug_assert_eq!(g.active, Some(self.id), "yield without the token");
        g.active = None;
        self.sched.cv.notify_all();
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(Aborted);
            }
            if g.active == Some(self.id) {
                return;
            }
            g = self.sched.cv.wait(g).expect("scheduler state");
        }
    }

    /// Attempts to take lock `id`; `false` if another thread owns it.
    pub(crate) fn try_acquire(&self, id: usize) -> bool {
        let mut g = self.sched.inner.lock().expect("scheduler state");
        if let std::collections::hash_map::Entry::Vacant(e) = g.lock_owner.entry(id) {
            e.insert(self.id);
            true
        } else {
            false
        }
    }

    /// Parks this thread until lock `id` is released, then returns with
    /// the token (the caller retries acquisition).
    pub(crate) fn block_on(&self, id: usize) {
        let mut g = self.sched.inner.lock().expect("scheduler state");
        g.status[self.id] = Status::Blocked(id);
        g.active = None;
        self.sched.cv.notify_all();
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(Aborted);
            }
            if g.active == Some(self.id) {
                return;
            }
            g = self.sched.cv.wait(g).expect("scheduler state");
        }
    }

    /// Releases lock `id` and makes every thread parked on it runnable.
    pub(crate) fn release(&self, id: usize) {
        let mut g = self.sched.inner.lock().expect("scheduler state");
        g.lock_owner.remove(&id);
        for s in g.status.iter_mut() {
            if *s == Status::Blocked(id) {
                *s = Status::Runnable;
            }
        }
    }
}

impl Scheduler {
    fn new(n: usize) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                active: None,
                status: vec![Status::Runnable; n],
                lock_owner: HashMap::new(),
                abort: false,
                panic_msg: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// First wait of a freshly spawned model thread.
    fn wait_for_token(&self, id: usize) {
        let mut g = self.inner.lock().expect("scheduler state");
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(Aborted);
            }
            if g.active == Some(id) {
                return;
            }
            g = self.cv.wait(g).expect("scheduler state");
        }
    }

    fn thread_done(&self, id: usize, panicked: Option<String>) {
        let mut g = self.inner.lock().expect("scheduler state");
        g.status[id] = Status::Finished;
        // Release anything the thread still owned (a panicking thread
        // may die holding a lock; the schedule is aborted anyway, but
        // unblocking keeps the teardown prompt).
        let owned: Vec<usize> = g
            .lock_owner
            .iter()
            .filter(|&(_, o)| *o == id)
            .map(|(l, _)| *l)
            .collect();
        for l in owned {
            g.lock_owner.remove(&l);
            for s in g.status.iter_mut() {
                if *s == Status::Blocked(l) {
                    *s = Status::Runnable;
                }
            }
        }
        if let Some(msg) = panicked {
            if g.panic_msg.is_none() {
                g.panic_msg = Some(msg);
            }
        }
        if g.active == Some(id) {
            g.active = None;
        }
        self.cv.notify_all();
    }

    /// Controller side: hand the token to `id` and wait until it yields,
    /// blocks, or finishes.
    fn run_until_yield(&self, id: usize) {
        let mut g = self.inner.lock().expect("scheduler state");
        g.active = Some(id);
        self.cv.notify_all();
        while g.active.is_some() {
            g = self.cv.wait(g).expect("scheduler state");
        }
    }

    fn runnable(&self) -> Vec<usize> {
        let g = self.inner.lock().expect("scheduler state");
        g.status
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        let g = self.inner.lock().expect("scheduler state");
        g.status.iter().all(|s| *s == Status::Finished)
    }

    fn take_panic(&self) -> Option<String> {
        self.inner.lock().expect("scheduler state").panic_msg.take()
    }

    fn abort(&self) {
        let mut g = self.inner.lock().expect("scheduler state");
        g.abort = true;
        self.cv.notify_all();
    }
}

/// One recorded branch point: how many options were runnable and which
/// (by position, not thread id) was taken.
struct Choice {
    options: usize,
    pick: usize,
}

/// Explores every interleaving of `threads` over fresh `setup()` state,
/// depth-first, up to the configured bounds. After each schedule in
/// which all threads finish cleanly, `invariant` judges the final state.
///
/// Thread bodies must reach their next shim operation in a bounded
/// number of plain instructions (no spinning on raw shared state) —
/// interleaving only happens at shim yield points.
pub fn explore<S: Sync>(
    cfg: &Config,
    setup: impl Fn() -> S,
    threads: &[fn(&S)],
    invariant: impl Fn(&S) -> Result<(), String>,
) -> Outcome {
    let mut script: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        let (trace, violation) = run_one(cfg, &setup, threads, &invariant, &script);
        if let Some(v) = violation {
            return Outcome {
                schedules,
                exhausted: false,
                violation: Some(v),
            };
        }
        // Backtrack to the deepest branch point with an untried option.
        let divergence = trace.iter().rposition(|c| c.pick + 1 < c.options);
        match divergence {
            None => {
                return Outcome {
                    schedules,
                    exhausted: true,
                    violation: None,
                };
            }
            Some(i) => {
                script = trace[..i].iter().map(|c| c.pick).collect();
                script.push(trace[i].pick + 1);
            }
        }
        if schedules >= cfg.max_schedules {
            return Outcome {
                schedules,
                exhausted: false,
                violation: None,
            };
        }
    }
}

fn run_one<S: Sync>(
    cfg: &Config,
    setup: &impl Fn() -> S,
    threads: &[fn(&S)],
    invariant: &impl Fn(&S) -> Result<(), String>,
    script: &[usize],
) -> (Vec<Choice>, Option<Violation>) {
    let n = threads.len();
    let sched = Arc::new(Scheduler::new(n));
    let state = setup();
    let mut trace: Vec<Choice> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut violation: Option<Violation> = None;

    std::thread::scope(|scope| {
        for (i, f) in threads.iter().enumerate() {
            let sched = Arc::clone(&sched);
            let state = &state;
            scope.spawn(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    CTX.with(|c| {
                        *c.borrow_mut() = Some(Ctx {
                            sched: Arc::clone(&sched),
                            id: i,
                        });
                    });
                    sched.wait_for_token(i);
                    f(state);
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                let panicked = match result {
                    Ok(()) => None,
                    Err(payload) => {
                        if payload.is::<Aborted>() {
                            None
                        } else if let Some(s) = payload.downcast_ref::<&str>() {
                            Some((*s).to_string())
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            Some(s.clone())
                        } else {
                            Some("model thread panicked".to_string())
                        }
                    }
                };
                sched.thread_done(i, panicked);
            });
        }

        let mut branch = 0usize;
        loop {
            if sched.all_finished() {
                break;
            }
            let runnable = sched.runnable();
            if runnable.is_empty() {
                violation = Some(Violation {
                    kind: Kind::Deadlock,
                    detail: "no runnable thread but not all finished".into(),
                    schedule: schedule.clone(),
                });
                break;
            }
            let chosen = if runnable.len() == 1 {
                runnable[0]
            } else {
                let pick = if branch < script.len() {
                    script[branch]
                } else {
                    0
                };
                branch += 1;
                trace.push(Choice {
                    options: runnable.len(),
                    pick,
                });
                runnable[pick]
            };
            schedule.push(chosen);
            if schedule.len() > cfg.max_steps {
                violation = Some(Violation {
                    kind: Kind::StepBound,
                    detail: format!("schedule exceeded {} steps", cfg.max_steps),
                    schedule: schedule.clone(),
                });
                break;
            }
            sched.run_until_yield(chosen);
            if let Some(msg) = sched.take_panic() {
                violation = Some(Violation {
                    kind: Kind::Panic,
                    detail: msg,
                    schedule: schedule.clone(),
                });
                break;
            }
        }
        sched.abort();
        // Scope join: aborted threads unwind via the Aborted payload.
    });

    if violation.is_none() {
        if let Err(msg) = invariant(&state) {
            violation = Some(Violation {
                kind: Kind::Invariant,
                detail: msg,
                schedule: schedule.clone(),
            });
        }
    }
    (trace, violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::{XAtomicU64, XMutex};

    struct Two {
        a: XMutex<u64>,
        b: XMutex<u64>,
    }

    fn ab(s: &Two) {
        let ga = s.a.lock();
        let mut gb = s.b.lock();
        *gb += *ga;
    }

    fn ba(s: &Two) {
        let gb = s.b.lock();
        let mut ga = s.a.lock();
        *ga += *gb;
    }

    #[test]
    fn finds_classic_lock_order_deadlock() {
        let out = explore(
            &Config::default(),
            || Two {
                a: XMutex::new(1),
                b: XMutex::new(1),
            },
            &[ab, ba],
            |_| Ok(()),
        );
        let v = out.violation.expect("AB/BA must deadlock somewhere");
        assert_eq!(v.kind, Kind::Deadlock);
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn consistent_order_is_exhaustively_clean() {
        let out = explore(
            &Config::default(),
            || Two {
                a: XMutex::new(1),
                b: XMutex::new(1),
            },
            &[ab, ab],
            |s| {
                let b = *s.b.lock();
                if b == 3 {
                    Ok(())
                } else {
                    Err(format!("b = {b}, want 3"))
                }
            },
        );
        assert!(out.passed(), "violation: {:?}", out.violation);
        assert!(out.schedules > 1, "lock handoff must branch");
    }

    fn bump(c: &XAtomicU64) {
        c.fetch_add(1);
    }

    fn racy_bump(c: &XAtomicU64) {
        let v = c.load();
        c.store(v + 1);
    }

    fn spin_to_hundred(c: &XAtomicU64) {
        while c.load() < 100 {
            c.fetch_add(1);
        }
    }

    #[test]
    fn counter_increments_are_not_lost_with_fetch_add() {
        let out = explore(
            &Config::default(),
            || XAtomicU64::new(0),
            &[bump, bump, bump],
            |c| {
                let v = c.load();
                if v == 3 {
                    Ok(())
                } else {
                    Err(format!("count = {v}, want 3"))
                }
            },
        );
        assert!(out.passed(), "violation: {:?}", out.violation);
        assert!(out.schedules > 1);
    }

    #[test]
    fn load_then_store_counter_loses_updates() {
        let out = explore(
            &Config::default(),
            || XAtomicU64::new(0),
            &[racy_bump, racy_bump],
            |c| {
                let v = c.load();
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("count = {v}, want 2"))
                }
            },
        );
        let v = out.violation.expect("read-modify-write race must be found");
        assert_eq!(v.kind, Kind::Invariant);
    }

    #[test]
    fn step_bound_trips_on_runaway_models() {
        let out = explore(
            &Config {
                max_steps: 8,
                max_schedules: 10,
            },
            || XAtomicU64::new(0),
            &[spin_to_hundred],
            |_| Ok(()),
        );
        let v = out.violation.expect("step bound must fire");
        assert_eq!(v.kind, Kind::StepBound);
    }
}

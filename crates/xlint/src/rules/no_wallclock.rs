//! `no-wallclock-in-hot-paths`: `Instant::now()` / `SystemTime::now()`
//! are forbidden in the query-evaluation crates (`slca`, `xrefine`).
//! A clock read is a syscall-adjacent stall on the per-node hot path;
//! timing belongs in obs-gated spans at phase granularity, where a
//! disabled collector costs one atomic load. Justified per-query
//! sites carry an `xlint::allow` pragma.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "no-wallclock-in-hot-paths";

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !Config::in_scope(&file.path, &config.wallclock_paths) {
        return;
    }
    let toks = file.code_tokens();
    for i in 0..toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        if matches!(t.kind, TokenKind::Ident)
            && (t.text == "Instant" || t.text == "SystemTime")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("now")
        {
            super::emit(
                out,
                file,
                RULE,
                t.line,
                t.col,
                format!("`{}::now()` on a query hot path", t.text),
                "time phases through obs spans; if this is per-query (not per-node), suppress with a justification".into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    #[test]
    fn flags_clock_reads_in_scope_only() {
        let config = Config::workspace_defaults();
        let src = "fn f() { let t = Instant::now(); let u = SystemTime::now(); }\n";
        let hot = SourceFile::parse("crates/slca/src/lib.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&hot, &config, &mut out);
        assert_eq!(out.len(), 2);

        let cold = SourceFile::parse("crates/obs/src/trace.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&cold, &config, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pragma_and_test_code_are_exempt() {
        let config = Config::workspace_defaults();
        let src = "// xlint::allow(no-wallclock-in-hot-paths): once per query, not per node\n\
                   fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { Instant::now(); } }\n";
        let f = SourceFile::parse("crates/xrefine/src/engine.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&f, &config, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}

//! The Porter stemming algorithm (Porter, 1980), implemented from the
//! original paper's rule tables. Used for the *word stemming* flavour of
//! term substitution (§III-B, e.g. `match ↔ matching`,
//! `publication ↔ publications`): two words are stem-equivalent when they
//! stem to the same string.

/// Stems an ASCII lowercase word. Non-ASCII or very short inputs are
/// returned unchanged (the standard Porter convention for words of length
/// <= 2).
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// True if both words share a Porter stem.
pub fn same_stem(a: &str, b: &str) -> bool {
    a != b && porter_stem(a) == porter_stem(b)
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// The *measure* m of the stem `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // skip vowels
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        m += 1;
        // skip consonants
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
    }
}

fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// *o: stem ends cvc where the last c is not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// If `w` ends with `suffix` and `measure(stem) > min_m`, replace the
/// suffix with `replacement` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > min_m {
        w.truncate(stem_len);
        w.extend_from_slice(replacement);
        true
    } else {
        false
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, b"sses") || ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, b"eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let trimmed = if ends_with(w, b"ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, b"ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if trimmed {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suffix, repl) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, repl, 0);
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suffix, repl) in RULES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, repl, 0);
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // special case: (m>1) and ends sion/tion -> drop "ion"
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            replace_if_m(w, suffix, b"", 1);
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_porter_examples() {
        // Examples from Porter's paper.
        assert_eq!(porter_stem("caresses"), "caress");
        assert_eq!(porter_stem("ponies"), "poni");
        assert_eq!(porter_stem("caress"), "caress");
        assert_eq!(porter_stem("cats"), "cat");
        assert_eq!(porter_stem("agreed"), "agre");
        assert_eq!(porter_stem("plastered"), "plaster");
        assert_eq!(porter_stem("motoring"), "motor");
        assert_eq!(porter_stem("sing"), "sing");
        assert_eq!(porter_stem("conflated"), "conflat");
        assert_eq!(porter_stem("troubled"), "troubl");
        assert_eq!(porter_stem("sized"), "size");
        assert_eq!(porter_stem("hopping"), "hop");
        assert_eq!(porter_stem("falling"), "fall");
        assert_eq!(porter_stem("hissing"), "hiss");
        assert_eq!(porter_stem("fizzed"), "fizz");
        assert_eq!(porter_stem("failing"), "fail");
        assert_eq!(porter_stem("filing"), "file");
        assert_eq!(porter_stem("happy"), "happi");
        assert_eq!(porter_stem("sky"), "sky");
        assert_eq!(porter_stem("relational"), "relat");
        assert_eq!(porter_stem("rational"), "ration");
        assert_eq!(porter_stem("digitizer"), "digit");
        assert_eq!(porter_stem("triplicate"), "triplic");
        assert_eq!(porter_stem("formative"), "form");
        assert_eq!(porter_stem("formalize"), "formal");
        assert_eq!(porter_stem("hopefulness"), "hope");
        assert_eq!(porter_stem("revival"), "reviv");
        assert_eq!(porter_stem("allowance"), "allow");
        assert_eq!(porter_stem("inference"), "infer");
        assert_eq!(porter_stem("adjustment"), "adjust");
        assert_eq!(porter_stem("probate"), "probat");
        assert_eq!(porter_stem("rate"), "rate");
        assert_eq!(porter_stem("cease"), "ceas");
        assert_eq!(porter_stem("controll"), "control");
        assert_eq!(porter_stem("roll"), "roll");
    }

    #[test]
    fn bibliographic_pairs_share_stems() {
        // The pairs the paper's refinement rules rely on.
        assert!(same_stem("publication", "publications"));
        assert!(same_stem("match", "matching"));
        assert!(same_stem("matching", "matches"));
        assert!(same_stem("query", "queries"));
        assert!(same_stem("index", "indexes"));
        assert!(!same_stem("database", "databank"));
        assert!(!same_stem("xml", "xml")); // identical words don't count
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("XML"), "XML"); // uppercase untouched
        assert_eq!(porter_stem("2003"), "2003");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "database",
            "keyword",
            "search",
            "efficient",
            "skyline",
            "computation",
            "proceedings",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but for this fixed word
            // list (used by the thesaurus) it must be stable.
            assert_eq!(twice, porter_stem(&twice), "{w}");
        }
    }
}

//! The `KvStore` trait and its two implementations.
//!
//! The index layer programs against [`KvStore`] so the choice between the
//! in-memory store (fast rebuilds, tests) and the persistent B+-tree
//! (the Berkeley-DB-equivalent of §VII) is a one-line swap.

use crate::btree::BTree;
use crate::error::Result;
use crate::pager::{FilePager, MemPager, PageVerifyReport};
use crate::vfs::Vfs;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::Path;
use std::sync::Arc;

/// Ordered key-value storage.
///
/// `Send + Sync` is part of the contract: read methods take `&self`, so a
/// store behind an `RwLock` (or any shared wrapper) can serve concurrent
/// readers — the concurrent query path of `invindex::KvBackedIndex`
/// depends on this.
pub trait KvStore: Send + Sync {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()>;
    fn delete(&mut self, key: &[u8]) -> Result<bool>;
    fn contains(&self, key: &[u8]) -> Result<bool>;
    /// Entries with `start <= key < end` (end `None` = unbounded).
    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    /// Entries whose key begins with `prefix`, in key order.
    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
    fn len(&self) -> u64;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Flushes to durable storage where applicable.
    fn sync(&mut self) -> Result<()>;
}

/// `BTreeMap`-backed store: the reference model and the default engine for
/// throwaway indexes.
#[derive(Debug, Default)]
pub struct MemKv {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemKv {
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvStore for MemKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.map.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.map.remove(key).is_some())
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.map.contains_key(key))
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let upper = match end {
            Some(e) if e <= start => return Ok(Vec::new()),
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        Ok(self
            .map
            .range((Bound::Included(start.to_vec()), upper))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self
            .map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Persistent store: the page-based B+-tree over a file.
pub struct DiskKv {
    tree: BTree<FilePager>,
}

impl DiskKv {
    /// Opens (creating if absent) a store at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(DiskKv {
            tree: BTree::new(FilePager::open(path)?)?,
        })
    }

    /// Opens a store whose I/O goes through `vfs` — the fault-injection
    /// entry point used by the torture tests.
    pub fn open_with_vfs(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Self> {
        Ok(DiskKv {
            tree: BTree::new(FilePager::open_with_vfs(vfs, path)?)?,
        })
    }

    /// Checksum-verifies every page in the backing file.
    pub fn verify_pages(&self) -> Result<PageVerifyReport> {
        self.tree.pager().verify_pages()
    }
}

impl KvStore for DiskKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.tree.put(key, value)?;
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(key)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        self.tree.contains(key)
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.tree.scan_range(start, end)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.tree.scan_prefix(prefix)
    }

    fn len(&self) -> u64 {
        self.tree.len()
    }

    fn sync(&mut self) -> Result<()> {
        self.tree.sync()
    }
}

/// In-memory B+-tree store: same code path as [`DiskKv`] minus the file.
/// Used to test the tree against [`MemKv`] as a model.
pub struct MemTreeKv {
    tree: BTree<MemPager>,
}

impl MemTreeKv {
    pub fn new() -> Result<Self> {
        Ok(MemTreeKv {
            tree: BTree::new(MemPager::new())?,
        })
    }
}

impl KvStore for MemTreeKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.tree.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.tree.put(key, value)?;
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(key)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        self.tree.contains(key)
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.tree.scan_range(start, end)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.tree.scan_prefix(prefix)
    }

    fn len(&self) -> u64 {
        self.tree.len()
    }

    fn sync(&mut self) -> Result<()> {
        self.tree.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn KvStore) {
        store.put(b"b", b"2").unwrap();
        store.put(b"a", b"1").unwrap();
        store.put(b"c", b"3").unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(b"a").unwrap().unwrap(), b"1");
        assert!(store.contains(b"b").unwrap());
        assert!(!store.contains(b"z").unwrap());
        let range = store.scan_range(b"a", Some(b"c")).unwrap();
        assert_eq!(range.len(), 2);
        assert!(store.delete(b"b").unwrap());
        assert!(!store.delete(b"b").unwrap());
        assert_eq!(store.len(), 2);
        store.sync().unwrap();
    }

    #[test]
    fn memkv_conforms() {
        exercise(&mut MemKv::new());
    }

    #[test]
    fn memtreekv_conforms() {
        exercise(&mut MemTreeKv::new().unwrap());
    }

    #[test]
    fn diskkv_conforms() {
        let dir = std::env::temp_dir().join(format!("kvstore_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conform.db");
        let _ = std::fs::remove_file(&path);
        exercise(&mut DiskKv::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}

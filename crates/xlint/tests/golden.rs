//! Golden-fixture suite: every fixture under `tests/fixtures/` must
//! produce exactly the findings its `.expected` file lists, and the
//! suite as a whole must exercise every rule xlint knows about.

use std::collections::BTreeSet;
use std::path::Path;

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn every_fixture_matches_its_golden_file() {
    let config = xlint::fixtures::fixture_config();
    let outcomes = xlint::fixtures::run_fixtures(&fixture_dir(), &config)
        .expect("fixture dir must load cleanly");
    let failures: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.passed)
        .map(|o| format!("{}:\n{}", o.name, o.details))
        .collect();
    assert!(
        failures.is_empty(),
        "fixtures disagree with their golden files:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fixtures_cover_every_rule() {
    let dir = fixture_dir();
    let mut seen = BTreeSet::new();
    for entry in std::fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "expected") {
            let text = std::fs::read_to_string(&path).expect("expected file");
            let lines = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'));
            for line in lines {
                let (_, rule) = line.split_once(':').expect("line:rule format");
                seen.insert(rule.trim().to_string());
            }
        }
    }
    for rule in xlint::rules::RULE_NAMES {
        assert!(
            seen.contains(*rule),
            "no fixture exercises rule `{rule}` — add one under tests/fixtures/"
        );
    }
    // Suppression behaviour (the pragma pseudo-rule) must be covered too.
    assert!(
        seen.contains("pragma"),
        "no fixture exercises pragma diagnostics"
    );
}

#[test]
fn at_least_one_fixture_asserts_cleanliness() {
    // A fixture with an empty `.expected` proves the runner also passes
    // when zero findings are expected (the exemption/suppression side).
    let dir = fixture_dir();
    let has_clean = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "expected"))
        .any(|p| {
            std::fs::read_to_string(&p)
                .map(|t| t.lines().all(|l| l.trim().is_empty()))
                .unwrap_or(false)
        });
    assert!(
        has_clean,
        "add a fixture whose expected finding set is empty"
    );
}

//! Property-based model test: the page-based B+-tree must behave exactly
//! like `std::collections::BTreeMap` under any interleaving of puts,
//! deletes, lookups and range scans.

use kvstore::{KvStore, MemKv, MemTreeKv};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    ScanPrefix(Vec<u8>),
    ScanRange(Vec<u8>, Option<Vec<u8>>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so operations collide often.
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Get),
        key_strategy().prop_map(Op::ScanPrefix),
        (key_strategy(), proptest::option::of(key_strategy()))
            .prop_map(|(s, e)| Op::ScanRange(s, e)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut model = MemKv::new();
        let mut tree = MemTreeKv::new().unwrap();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    model.put(&k, &v).unwrap();
                    tree.put(&k, &v).unwrap();
                }
                Op::Delete(k) => {
                    prop_assert_eq!(model.delete(&k).unwrap(), tree.delete(&k).unwrap());
                }
                Op::Get(k) => {
                    prop_assert_eq!(model.get(&k).unwrap(), tree.get(&k).unwrap());
                }
                Op::ScanPrefix(p) => {
                    prop_assert_eq!(model.scan_prefix(&p).unwrap(), tree.scan_prefix(&p).unwrap());
                }
                Op::ScanRange(s, e) => {
                    prop_assert_eq!(
                        model.scan_range(&s, e.as_deref()).unwrap(),
                        tree.scan_range(&s, e.as_deref()).unwrap()
                    );
                }
            }
            prop_assert_eq!(model.len(), tree.len());
        }
    }

    #[test]
    fn btree_handles_bulk_then_scan(keys in proptest::collection::btree_set(
        proptest::collection::vec(any::<u8>(), 1..32), 1..300))
    {
        let mut tree = MemTreeKv::new().unwrap();
        for (i, k) in keys.iter().enumerate() {
            tree.put(k, &i.to_le_bytes()).unwrap();
        }
        let scanned = tree.scan_range(&[], None).unwrap();
        prop_assert_eq!(scanned.len(), keys.len());
        let scanned_keys: Vec<&[u8]> = scanned.iter().map(|(k, _)| k.as_slice()).collect();
        let model_keys: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        prop_assert_eq!(scanned_keys, model_keys);
    }
}

#[derive(Debug, Clone)]
enum DurableOp {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Checkpoint,
    Reopen,
}

fn durable_op_strategy() -> impl Strategy<Value = DurableOp> {
    prop_oneof![
        4 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(k, v)| DurableOp::Put(k, v)),
        2 => key_strategy().prop_map(DurableOp::Delete),
        1 => Just(DurableOp::Checkpoint),
        1 => Just(DurableOp::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn durable_store_matches_model_across_reopens(
        ops in proptest::collection::vec(durable_op_strategy(), 1..60),
        case_id in any::<u64>(),
    ) {
        use kvstore::DurableKv;
        let dir = std::env::temp_dir().join(format!("durable_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join(format!("case_{case_id}"));
        let _ = std::fs::remove_file(base.with_extension("db"));
        let _ = std::fs::remove_file(base.with_extension("wal"));

        let mut model = MemKv::new();
        let mut store = DurableKv::open(&base).unwrap();
        for op in ops {
            match op {
                DurableOp::Put(k, v) => {
                    model.put(&k, &v).unwrap();
                    store.put(&k, &v).unwrap();
                }
                DurableOp::Delete(k) => {
                    prop_assert_eq!(model.delete(&k).unwrap(), store.delete(&k).unwrap());
                }
                DurableOp::Checkpoint => store.checkpoint().unwrap(),
                DurableOp::Reopen => {
                    drop(store);
                    store = DurableKv::open(&base).unwrap();
                }
            }
            prop_assert_eq!(model.len(), store.len());
        }
        // final full-state comparison (after one more recovery)
        drop(store);
        let store = DurableKv::open(&base).unwrap();
        prop_assert_eq!(
            model.scan_range(&[], None).unwrap(),
            store.scan_range(&[], None).unwrap()
        );
        let _ = std::fs::remove_file(base.with_extension("db"));
        let _ = std::fs::remove_file(base.with_extension("wal"));
    }
}

//! Criterion bench: `getOptimalRQ` (§V) — the paper gives its complexity
//! as `O(|Q|^2 log |R|)`; this bench sweeps query length and rule-set
//! size to confirm the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lexicon::{RefineOp, Rule, RuleSet, RuleSource};
use std::collections::HashSet;
use std::hint::black_box;
use xrefine::{get_top_optimal_rqs, Query};

fn rule_set(n: usize) -> RuleSet {
    let mut rs = RuleSet::new();
    for i in 0..n {
        rs.add(Rule::new(
            &[&format!("w{i}")],
            &[&format!("v{i}")],
            RefineOp::Substitute,
            RuleSource::Spelling,
            1.0,
        ));
    }
    rs
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_query_length");
    for len in [2usize, 4, 8, 16] {
        let q = Query::from_keywords((0..len).map(|i| format!("w{i}")));
        let rules = rule_set(64);
        let avail_set: HashSet<String> = (0..len).map(|i| format!("v{i}")).collect();
        let avail = move |w: &str| avail_set.contains(w);
        group.bench_with_input(BenchmarkId::from_parameter(len), &q, |b, q| {
            b.iter(|| black_box(get_top_optimal_rqs(q, &avail, &rules, 4)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dp_rule_count");
    for n in [8usize, 64, 512] {
        let q = Query::from_keywords((0..6).map(|i| format!("w{i}")));
        let rules = rule_set(n);
        let avail_set: HashSet<String> = (0..n).map(|i| format!("v{i}")).collect();
        let avail = move |w: &str| avail_set.contains(w);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| black_box(get_top_optimal_rqs(q, &avail, &rules, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);

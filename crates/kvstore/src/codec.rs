//! Checked little-endian decoding helpers.
//!
//! Shared by the WAL frame parser, the pager's page-trailer checksum
//! verification and the B+-tree node readers, so out-of-bounds slices
//! surface as [`KvError::Corrupt`] instead of panicking on
//! `try_into().unwrap()`.

use crate::error::{KvError, Result};

fn bytes_at<'a>(buf: &'a [u8], pos: usize, need: usize, what: &str) -> Result<&'a [u8]> {
    pos.checked_add(need)
        .and_then(|end| buf.get(pos..end))
        .ok_or_else(|| truncated(buf, pos, need, what))
}

/// Reads a little-endian `u16` at `pos`, or reports `what` as truncated.
pub fn u16_at(buf: &[u8], pos: usize, what: &str) -> Result<u16> {
    let s = bytes_at(buf, pos, 2, what)?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

/// Reads a little-endian `u32` at `pos`, or reports `what` as truncated.
pub fn u32_at(buf: &[u8], pos: usize, what: &str) -> Result<u32> {
    let s = bytes_at(buf, pos, 4, what)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads a little-endian `u64` at `pos`, or reports `what` as truncated.
pub fn u64_at(buf: &[u8], pos: usize, what: &str) -> Result<u64> {
    let s = bytes_at(buf, pos, 8, what)?;
    Ok(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

/// Borrows the `len`-byte slice at `pos`, or reports `what` as
/// truncated. The checked form of `&buf[pos..pos + len]` for
/// disk-derived lengths.
pub fn slice_at<'a>(buf: &'a [u8], pos: usize, len: usize, what: &str) -> Result<&'a [u8]> {
    bytes_at(buf, pos, len, what)
}

fn truncated(buf: &[u8], pos: usize, need: usize, what: &str) -> KvError {
    KvError::corrupt(format!(
        "{what}: need {need} bytes at offset {pos} but buffer holds {}",
        buf.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads_decode_little_endian() {
        let buf = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        assert_eq!(u16_at(&buf, 0, "x").unwrap(), 0x0201);
        assert_eq!(u32_at(&buf, 1, "x").unwrap(), 0x0504_0302);
        assert_eq!(u64_at(&buf, 1, "x").unwrap(), 0x0908_0706_0504_0302);
    }

    #[test]
    fn out_of_bounds_reads_are_corrupt_not_panics() {
        let buf = [0u8; 3];
        assert!(u32_at(&buf, 0, "frame length").unwrap_err().is_corrupt());
        assert!(u16_at(&buf, 2, "key length").unwrap_err().is_corrupt());
        assert!(u64_at(&buf, usize::MAX - 4, "root")
            .unwrap_err()
            .is_corrupt());
    }
}

//! Minimal HTTP/1.1 framing: request parsing and response writing.
//!
//! Only what the serving path needs — request line, the `Connection` and
//! `Content-Length` headers, query-string decoding — parsed defensively:
//! this file is in xlint's `no-panic-paths` *and* `index_paths` scopes,
//! so bytes off the wire are never indexed unchecked and malformed input
//! surfaces as a structured [`ParseError`], never a panic. A garbage
//! request must cost the server one `400`, not a connection thread.

use std::io::{self, Write};

/// Head bytes (request line + headers) beyond this are rejected with
/// `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Request bodies beyond this are rejected with `413 Content Too Large`.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request head. The body (`content_length` bytes) follows the
/// head in the connection buffer; the server reads and discards it.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded query parameters, in request order.
    pub query: Vec<(String, String)>,
    pub keep_alive: bool,
    pub content_length: usize,
    /// Bytes of the head, including the terminating blank line.
    pub head_len: usize,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Total frame length: head plus declared body.
    pub fn frame_len(&self) -> usize {
        self.head_len.saturating_add(self.content_length)
    }
}

/// Why a request head could not be parsed, with the status the
/// connection should answer before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub status: u16,
    pub detail: &'static str,
}

/// Incremental parse result over the connection's receive buffer.
#[derive(Debug)]
pub enum Parse {
    /// Not enough bytes for a full head yet; read more.
    Incomplete,
    /// A complete head (the body may still be in flight; compare
    /// `frame_len()` against the buffered length).
    Ready(Box<Request>),
    /// Irrecoverable framing problem; answer `status` and close.
    Bad(ParseError),
}

fn bad(status: u16, detail: &'static str) -> Parse {
    Parse::Bad(ParseError { status, detail })
}

/// Finds `\r\n\r\n` in `buf`, returning the index one past it.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i.saturating_add(4))
}

/// Parses a request head from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return bad(431, "request head exceeds MAX_HEAD_BYTES");
        }
        return Parse::Incomplete;
    };
    if head_len > MAX_HEAD_BYTES {
        return bad(431, "request head exceeds MAX_HEAD_BYTES");
    }
    let Some(head) = buf.get(..head_len.saturating_sub(4)) else {
        return bad(400, "head bounds disagree"); // unreachable by construction
    };
    let Ok(head) = std::str::from_utf8(head) else {
        return bad(400, "request head is not UTF-8");
    };
    let mut lines = head.split("\r\n");
    let Some(request_line) = lines.next() else {
        return bad(400, "empty request head");
    };

    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(400, "malformed request line");
    };
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return bad(400, "malformed request line");
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return bad(505, "unsupported HTTP version"),
    };

    let mut keep_alive = keep_alive_default;
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return bad(400, "malformed header line");
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return bad(400, "unparseable Content-Length");
            };
            content_length = n;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope for the query protocol.
            return bad(501, "Transfer-Encoding is not supported");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return bad(413, "request body exceeds MAX_BODY_BYTES");
    }

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Parse::Ready(Box::new(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: parse_query(query_string),
        keep_alive,
        content_length,
        head_len,
    }))
}

/// Splits and percent-decodes `a=b&c=d` pairs. Pairs without `=` decode
/// to an empty value; undecodable `%` escapes are kept literally (the
/// query layer treats them as ordinary characters).
pub fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// `+` → space, `%XX` → byte; invalid escapes pass through unchanged.
/// Decoded bytes are interpreted as UTF-8, lossily.
pub fn percent_decode(s: &str) -> String {
    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    let mut bytes = s.bytes();
    while let Some(b) = bytes.next() {
        match b {
            b'+' => out.push(b' '),
            b'%' => {
                let hi = bytes.next();
                let lo = bytes.next();
                match (hi.and_then(hex_val), lo.and_then(hex_val)) {
                    (Some(h), Some(l)) => out.push((h << 4) | l),
                    _ => {
                        out.push(b'%');
                        out.extend(hi);
                        out.extend(lo);
                    }
                }
            }
            other => out.push(other),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// A response ready to serialize. Bodies are formed before writing so
/// `Content-Length` is always exact (no chunking).
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Adds `Retry-After: <secs>` (shedding responses).
    pub retry_after: Option<u32>,
    /// Forces `Connection: close` regardless of the request.
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    /// JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, detail: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\":{}}}", obs::metrics::json_string(detail)),
        )
    }

    pub fn with_retry_after(mut self, secs: u32) -> Response {
        self.retry_after = Some(secs);
        self
    }

    pub fn with_close(mut self) -> Response {
        self.close = true;
        self
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes `resp` (status line, headers, body) to `out` in one
/// buffered write so small responses leave in a single segment.
pub fn write_response(
    out: &mut impl Write,
    resp: &Response,
    close_connection: bool,
) -> io::Result<()> {
    let mut head = String::with_capacity(128);
    use std::fmt::Write as _;
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        let _ = write!(head, "Retry-After: {secs}\r\n");
    }
    let conn = if close_connection || resp.close {
        "close"
    } else {
        "keep-alive"
    };
    let _ = write!(head, "Connection: {conn}\r\n\r\n");

    let mut frame = Vec::with_capacity(head.len() + resp.body.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(&resp.body);
    out.write_all(&frame)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> Request {
        match parse_request(raw.as_bytes()) {
            Parse::Ready(r) => *r,
            other => panic!("expected Ready, got {other:?} for {raw:?}"),
        }
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req =
            parse_ok("GET /query?q=xml+2003&k=3 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("q"), Some("xml 2003"));
        assert_eq!(req.param("k"), Some("3"));
        assert_eq!(req.param("missing"), None);
        assert!(!req.keep_alive);
        assert_eq!(req.content_length, 0);
        assert_eq!(req.frame_len(), req.head_len);
    }

    #[test]
    fn keep_alive_defaults_follow_version() {
        assert!(parse_ok("GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!parse_ok("GET / HTTP/1.0\r\n\r\n").keep_alive);
        let req = parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn body_length_is_carried() {
        let req = parse_ok("POST /admin/drain HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(req.content_length, 5);
        assert_eq!(req.frame_len(), req.head_len + 5);
    }

    #[test]
    fn incomplete_heads_ask_for_more() {
        assert!(matches!(
            parse_request(b"GET /query HTTP/1.1\r\nHost"),
            Parse::Incomplete
        ));
        assert!(matches!(parse_request(b""), Parse::Incomplete));
    }

    #[test]
    fn framing_errors_map_to_statuses() {
        let cases: &[(&[u8], u16)] = &[
            (b"GARBAGE\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n", 413),
            (
                b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"\xff\xfe\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            match parse_request(raw) {
                Parse::Bad(e) => assert_eq!(e.status, *status, "{raw:?}"),
                other => panic!("expected Bad({status}), got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_head_is_rejected_even_unterminated() {
        let huge = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(parse_request(&huge), Parse::Bad(e) if e.status == 431));
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn response_serialization_includes_headers() {
        let mut out = Vec::new();
        let resp = Response::error(503, "shed").with_retry_after(1);
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"shed\"}"), "{text}");
        let body_len = "{\"error\":\"shed\"}".len();
        assert!(
            text.contains(&format!("Content-Length: {body_len}\r\n")),
            "{text}"
        );
    }
}

//! Ablation: the *meaningful SLCA* notion (Definitions 3.3/3.4) and the
//! reduction factor `r` of Formula 1.
//!
//! Plain SLCA declares a query fine whenever *any* SLCA exists — even the
//! document root. Meaningful SLCA requires results under an inferred
//! search-for node. This experiment measures how often each notion
//! correctly decides "needs refinement" on the perturbed workload (where
//! ground truth is known by construction), and sweeps `r`.

use bench::{dblp, f3, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use invindex::Index;
use slca::{needs_refinement, slca_scan_eager, MeaningfulFilter, SearchForConfig};
use std::sync::Arc;
use xrefine::Query;

fn main() {
    let doc = dblp(0.25);
    let index = Index::build(Arc::clone(&doc));
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 15,
            ..Default::default()
        },
    );

    // Ground truth: ExtraTerm queries are over-constrained (should be
    // flagged), None queries are fine (should not), keyword-breaking
    // perturbations always need refinement (their SLCA is empty anyway,
    // both notions agree) — so the interesting discriminator is
    // ExtraTerm-vs-None.
    let pool: Vec<_> = workload
        .iter()
        .filter(|q| matches!(q.kind, PerturbKind::None | PerturbKind::ExtraTerm))
        .collect();

    let mut t = Table::new(&[
        "detector",
        "flagged ExtraTerm (recall)",
        "flagged None (false alarms)",
    ]);

    // plain SLCA: needs refinement iff the SLCA set is empty
    let mut flagged_extra = 0;
    let mut flagged_none = 0;
    let (mut n_extra, mut n_none) = (0, 0);
    for wq in &pool {
        let q = Query::from_keywords(wq.keywords.iter().cloned());
        let lists: Vec<&[invindex::Posting]> = q
            .keywords()
            .iter()
            .map(|k| index.list(k).map(|l| l.as_slice()).unwrap_or(&[]))
            .collect();
        let slcas = slca_scan_eager(&lists);
        let flagged = slcas.is_empty();
        match wq.kind {
            PerturbKind::ExtraTerm => {
                n_extra += 1;
                flagged_extra += usize::from(flagged);
            }
            _ => {
                n_none += 1;
                flagged_none += usize::from(flagged);
            }
        }
    }
    t.row(vec![
        "plain SLCA (no filter)".into(),
        format!("{flagged_extra}/{n_extra}"),
        format!("{flagged_none}/{n_none}"),
    ]);

    // meaningful SLCA across reduction factors
    for r in [0.5, 0.8, 0.95] {
        let config = SearchForConfig {
            reduction_factor: r,
            ..Default::default()
        };
        let mut flagged_extra = 0;
        let mut flagged_none = 0;
        for wq in &pool {
            let q = Query::from_keywords(wq.keywords.iter().cloned());
            let ids: Vec<_> = q
                .keywords()
                .iter()
                .filter_map(|k| index.vocabulary().get(k))
                .collect();
            let filter = MeaningfulFilter::infer(&index, &ids, &config);
            let lists: Vec<&[invindex::Posting]> = q
                .keywords()
                .iter()
                .map(|k| index.list(k).map(|l| l.as_slice()).unwrap_or(&[]))
                .collect();
            let slcas = slca_scan_eager(&lists);
            let flagged = needs_refinement(&filter, &slcas);
            match wq.kind {
                PerturbKind::ExtraTerm => flagged_extra += usize::from(flagged),
                _ => flagged_none += usize::from(flagged),
            }
        }
        t.row(vec![
            format!("meaningful SLCA (r = {})", f3(r)),
            format!("{flagged_extra}/{n_extra}"),
            format!("{flagged_none}/{n_none}"),
        ]);
    }

    println!("== Ablation: meaningful SLCA vs plain SLCA as the refinement trigger ==\n");
    t.print();
    println!(
        "\nExtraTerm queries add an off-topic keyword (their joint cover is \
         usually the root); None queries are valid. Plain SLCA cannot flag \
         root-only covers at all."
    );
}

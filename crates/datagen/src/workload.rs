//! Query-workload generator with ground truth.
//!
//! The paper builds its query pool from a live demo's query log: 219
//! empty-result queries plus 100 queries with results, and two human
//! annotators provide the "suggested replacement" per query (Tables
//! III–VI). We reproduce that construction synthetically: *valid* queries
//! are sampled from keywords that genuinely co-occur inside one document
//! partition, then perturbed by the inverse of a refinement operation, so
//! the intended query — the annotator's ground truth — is known by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use xmldom::{tokenize, Document};

/// The perturbation applied to a valid query (the inverse of the
/// refinement operation that repairs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbKind {
    /// No perturbation: the query has matching results.
    None,
    /// An off-topic keyword was added; repair = term deletion (Table III).
    ExtraTerm,
    /// A data keyword was split in two; repair = term merging (Table IV).
    SplitKeyword,
    /// Two query keywords were concatenated; repair = term split (Table V).
    MergedKeywords,
    /// Characters were mutated; repair = spelling substitution (Table VI).
    Typo,
    /// A keyword was replaced by an out-of-vocabulary synonym; repair =
    /// synonym substitution (Table VI).
    Synonym,
    /// A keyword was replaced by a morphological variant; repair =
    /// stemming substitution (Table VI).
    Stemming,
}

impl PerturbKind {
    pub const ALL_PERTURBED: [PerturbKind; 6] = [
        PerturbKind::ExtraTerm,
        PerturbKind::SplitKeyword,
        PerturbKind::MergedKeywords,
        PerturbKind::Typo,
        PerturbKind::Synonym,
        PerturbKind::Stemming,
    ];
}

/// A generated query with its ground truth.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The (possibly broken) query a user would type.
    pub keywords: Vec<String>,
    /// The intended (valid) query the perturbation destroyed.
    pub intended: Vec<String>,
    pub kind: PerturbKind,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Queries per perturbation kind (including `None`).
    pub per_kind: usize,
    pub min_len: usize,
    pub max_len: usize,
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            per_kind: 10,
            min_len: 2,
            max_len: 5,
            seed: 0x9E3779B9,
        }
    }
}

/// Per-partition token pools extracted from a document.
struct Pools {
    /// Distinct tokens per document partition.
    partitions: Vec<Vec<String>>,
    /// The full document vocabulary.
    vocab: HashSet<String>,
}

fn pools(doc: &Document) -> Pools {
    let root = doc.root();
    let mut partitions = Vec::new();
    let mut vocab = HashSet::new();
    for &child in &doc.node(root).children {
        let mut set: HashSet<String> = HashSet::new();
        for id in doc.descendants_or_self(child) {
            for t in tokenize(doc.tag_name(id)) {
                set.insert(t);
            }
            for t in tokenize(&doc.node(id).text) {
                set.insert(t);
            }
        }
        vocab.extend(set.iter().cloned());
        let mut v: Vec<String> = set.into_iter().collect();
        v.sort();
        partitions.push(v);
    }
    Pools { partitions, vocab }
}

/// Generates the workload over `doc`.
pub fn generate_workload(doc: &Document, config: &WorkloadConfig) -> Vec<WorkloadQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pools = pools(doc);
    let mut out = Vec::new();

    let mut kinds = vec![PerturbKind::None];
    kinds.extend(PerturbKind::ALL_PERTURBED);
    for kind in kinds {
        let mut produced = 0;
        let mut attempts = 0;
        while produced < config.per_kind && attempts < config.per_kind * 200 {
            attempts += 1;
            if let Some(q) = generate_one(&pools, config, kind, &mut rng) {
                out.push(q);
                produced += 1;
            }
        }
    }
    out
}

fn sample_valid(pools: &Pools, config: &WorkloadConfig, rng: &mut StdRng) -> Option<Vec<String>> {
    let p = &pools.partitions[rng.random_range(0..pools.partitions.len())];
    let len = rng
        .random_range(config.min_len..=config.max_len)
        .min(p.len());
    if len < config.min_len {
        return None;
    }
    let mut chosen: Vec<String> = Vec::with_capacity(len);
    let mut guard = 0;
    while chosen.len() < len && guard < 200 {
        guard += 1;
        let w = p[rng.random_range(0..p.len())].clone();
        if !chosen.contains(&w) {
            chosen.push(w);
        }
    }
    (chosen.len() >= config.min_len).then_some(chosen)
}

fn generate_one(
    pools: &Pools,
    config: &WorkloadConfig,
    kind: PerturbKind,
    rng: &mut StdRng,
) -> Option<WorkloadQuery> {
    let intended = sample_valid(pools, config, rng)?;
    let mut keywords = intended.clone();
    match kind {
        PerturbKind::None => {}
        PerturbKind::ExtraTerm => {
            // A keyword from the vocabulary unlikely to co-occur: pick from
            // a different partition and require it absent from this query.
            let mut guard = 0;
            loop {
                guard += 1;
                if guard > 100 {
                    return None;
                }
                let p = &pools.partitions[rng.random_range(0..pools.partitions.len())];
                let w = p[rng.random_range(0..p.len())].clone();
                if !keywords.contains(&w) {
                    keywords.push(w);
                    break;
                }
            }
        }
        PerturbKind::SplitKeyword => {
            // Split one keyword of length >= 5 into two fragments the user
            // "typed separately"; repair merges them back.
            let idx = longest_keyword(&keywords, 5)?;
            let w = keywords[idx].clone();
            let cut = rng.random_range(2..w.len() - 1);
            let (a, b) = (w[..cut].to_string(), w[cut..].to_string());
            // Both fragments must be out-of-data, otherwise the query may
            // accidentally still match.
            if pools.vocab.contains(&a) && pools.vocab.contains(&b) {
                return None;
            }
            keywords.splice(idx..=idx, [a, b]);
        }
        PerturbKind::MergedKeywords => {
            if keywords.len() < config.min_len + 1 {
                return None;
            }
            let idx = rng.random_range(0..keywords.len() - 1);
            let merged = format!("{}{}", keywords[idx], keywords[idx + 1]);
            if pools.vocab.contains(&merged) {
                return None;
            }
            keywords.splice(idx..=idx + 1, [merged]);
        }
        PerturbKind::Typo => {
            let idx = longest_keyword(&keywords, 4)?;
            let w = typo(&keywords[idx], rng);
            if pools.vocab.contains(&w) {
                return None;
            }
            keywords[idx] = w;
        }
        PerturbKind::Synonym => {
            // Out-of-vocabulary synonyms for common data terms.
            const MISMATCHES: &[(&str, &str)] = &[
                ("inproceedings", "publication"),
                ("article", "publication"),
                ("booktitle", "venue"),
                ("author", "writer"),
                ("title", "heading"),
                ("player", "athlete"),
                ("team", "club"),
            ];
            let idx = keywords.iter().position(|k| {
                MISMATCHES
                    .iter()
                    .any(|(from, to)| k == from && !pools.vocab.contains(*to))
            })?;
            let to = MISMATCHES
                .iter()
                .find(|(from, _)| keywords[idx] == *from)
                .map(|(_, to)| to.to_string())
                .expect("found above");
            keywords[idx] = to;
        }
        PerturbKind::Stemming => {
            let idx = longest_keyword(&keywords, 5)?;
            let w = &keywords[idx];
            let variant = if let Some(stripped) = w.strip_suffix('s') {
                stripped.to_string()
            } else if let Some(stripped) = w.strip_suffix("ing") {
                stripped.to_string()
            } else {
                format!("{w}s")
            };
            if variant.len() < 3 || pools.vocab.contains(&variant) {
                return None;
            }
            keywords[idx] = variant;
        }
    }
    Some(WorkloadQuery {
        keywords,
        intended,
        kind,
    })
}

/// Index of the longest keyword of at least `min_len` characters.
fn longest_keyword(keywords: &[String], min_len: usize) -> Option<usize> {
    keywords
        .iter()
        .enumerate()
        .filter(|(_, w)| w.len() >= min_len && w.chars().all(|c| c.is_ascii_alphabetic()))
        .max_by_key(|(_, w)| w.len())
        .map(|(i, _)| i)
}

/// Injects one character-level error (substitute, delete, insert or
/// transpose).
fn typo(word: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = word.chars().collect();
    let n = chars.len();
    match rng.random_range(0..4u8) {
        0 => {
            let i = rng.random_range(0..n);
            let c = (b'a' + rng.random_range(0..26u8)) as char;
            chars[i] = c;
        }
        1 => {
            let i = rng.random_range(0..n);
            chars.remove(i);
        }
        2 => {
            let i = rng.random_range(0..=n);
            let c = (b'a' + rng.random_range(0..26u8)) as char;
            chars.insert(i, c);
        }
        _ => {
            if n >= 2 {
                let i = rng.random_range(0..n - 1);
                chars.swap(i, i + 1);
            } else {
                chars.push('x');
            }
        }
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate_dblp, DblpConfig};

    fn doc() -> Document {
        generate_dblp(&DblpConfig {
            authors: 40,
            ..Default::default()
        })
    }

    #[test]
    fn workload_covers_all_kinds() {
        let d = doc();
        let w = generate_workload(&d, &WorkloadConfig::default());
        for kind in PerturbKind::ALL_PERTURBED {
            assert!(
                w.iter().filter(|q| q.kind == kind).count() > 0,
                "no queries of kind {kind:?}"
            );
        }
        assert!(w.iter().any(|q| q.kind == PerturbKind::None));
    }

    #[test]
    fn perturbed_queries_differ_from_intended() {
        let d = doc();
        let w = generate_workload(&d, &WorkloadConfig::default());
        for q in &w {
            match q.kind {
                PerturbKind::None => assert_eq!(q.keywords, q.intended),
                _ => assert_ne!(q.keywords, q.intended, "{q:?}"),
            }
        }
    }

    #[test]
    fn intended_queries_use_co_occurring_vocabulary() {
        let d = doc();
        let p = pools(&d);
        let w = generate_workload(&d, &WorkloadConfig::default());
        for q in &w {
            // every intended keyword set fits inside one partition
            assert!(
                p.partitions
                    .iter()
                    .any(|part| q.intended.iter().all(|k| part.binary_search(k).is_ok())),
                "intended {:?} not co-located",
                q.intended
            );
        }
    }

    #[test]
    fn broken_keywords_miss_the_vocabulary() {
        let d = doc();
        let p = pools(&d);
        let w = generate_workload(&d, &WorkloadConfig::default());
        for q in w.iter().filter(|q| {
            matches!(
                q.kind,
                PerturbKind::Typo | PerturbKind::Synonym | PerturbKind::Stemming
            )
        }) {
            assert!(
                q.keywords.iter().any(|k| !p.vocab.contains(k)),
                "{q:?} should contain an out-of-vocabulary keyword"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = doc();
        let a = generate_workload(&d, &WorkloadConfig::default());
        let b = generate_workload(&d, &WorkloadConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.keywords, y.keywords);
        }
    }
}

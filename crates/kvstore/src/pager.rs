//! Page storage: fixed-size pages addressed by [`PageId`], backed either by
//! memory or by a file with a write-back cache.
//!
//! The B+-tree above never touches files directly; it allocates, reads and
//! writes whole pages through the [`Pager`] trait, which keeps the tree
//! logic testable against the in-memory pager and makes the disk format a
//! detail of [`FilePager`].
//!
//! ## On-disk page format (version 2)
//!
//! Each page occupies [`PHYS_PAGE_SIZE`] (4096) bytes on disk: a
//! [`PAGE_SIZE`] (4088) byte payload followed by an 8-byte trailer
//! `[crc32(payload):u32][`[`PAGE_TRAILER_MAGIC`]`:u32]` (little-endian).
//! Torn pages and bit-rot therefore surface as
//! [`KvError::Corrupt`]` { page, .. }` on read instead of being parsed as
//! garbage. Pages that are entirely zero are valid: they are the state of
//! allocated-but-never-flushed pages after the file is grown with
//! `set_len`.
//!
//! Version-1 files (no trailer; raw 4096-byte payloads) are detected by
//! their all-zero trailer bytes on page 0 and served **read-only**; the
//! checkpoint path of [`crate::DurableKv`] rewrites them in the current
//! format.

use crate::codec;
use crate::error::{KvError, Result};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use crate::wal::crc32;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Usable payload bytes per page.
pub const PAGE_SIZE: usize = 4088;
/// Bytes a page occupies on disk: payload plus checksum trailer.
pub const PHYS_PAGE_SIZE: usize = 4096;
/// Marker closing every checksummed page: "XRP2".
pub const PAGE_TRAILER_MAGIC: u32 = 0x5852_5032;

/// Identifier of a page within a store. Page 0 is the store header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (page 0 is the header, never a tree page).
    pub const NULL: PageId = PageId(0);

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// A page-granular storage backend.
///
/// Like [`crate::KvStore`], pagers are `Send + Sync`: `read` takes
/// `&self` so concurrent readers can share a pager without an exclusive
/// lock (writes still require `&mut self`).
pub trait Pager: Send + Sync {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> Result<PageId>;
    /// Reads a full page. `id` must have been allocated.
    fn read(&self, id: PageId) -> Result<Vec<u8>>;
    /// Overwrites a full page. `data.len()` must equal [`PAGE_SIZE`].
    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()>;
    /// Returns a previously allocated page to the free pool.
    fn free(&mut self, id: PageId) -> Result<()>;
    /// Number of pages ever allocated (including freed ones and the header).
    fn page_count(&self) -> u64;
    /// Flushes buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// Purely in-memory pager. The default for tests and for index builds that
/// never need persistence.
#[derive(Debug, Default)]
pub struct MemPager {
    pages: Vec<Vec<u8>>,
    free: Vec<PageId>,
}

impl MemPager {
    pub fn new() -> Self {
        // Reserve page 0 as the header so ids match the file layout.
        MemPager {
            pages: vec![vec![0; PAGE_SIZE]],
            free: Vec::new(),
        }
    }
}

impl Pager for MemPager {
    fn allocate(&mut self) -> Result<PageId> {
        if let Some(id) = self.free.pop() {
            match self.pages.get_mut(id.0 as usize) {
                Some(page) => page.fill(0),
                None => {
                    return Err(KvError::corrupt_page(
                        id.0,
                        "free list references a page the pager never allocated",
                    ))
                }
            }
            return Ok(id);
        }
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0; PAGE_SIZE]);
        Ok(id)
    }

    fn read(&self, id: PageId) -> Result<Vec<u8>> {
        obs::counter!("kvstore_pager_page_reads_total").inc();
        obs::trace::count("pages.read", 1);
        self.pages
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| KvError::corrupt_page(id.0, "read of unallocated page"))
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        obs::counter!("kvstore_pager_page_writes_total").inc();
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| KvError::corrupt_page(id.0, "write of unallocated page"))?;
        page.copy_from_slice(data);
        Ok(())
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        if id.is_null() || id.0 as usize >= self.pages.len() {
            return Err(KvError::corrupt_page(id.0, "free of invalid page"));
        }
        self.free.push(id);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Checksum verification summary produced by [`FilePager::verify_pages`].
#[derive(Debug, Clone)]
pub struct PageVerifyReport {
    /// On-disk format version (1 = legacy unchecksummed, 2 = trailer CRCs).
    pub format_version: u8,
    /// Total pages in the file.
    pub total_pages: u64,
    /// All-zero pages (allocated but never flushed, or freed).
    pub zero_pages: u64,
    /// Pages whose trailer magic and CRC both verified.
    pub valid_pages: u64,
    /// Pages that failed verification, with the reason.
    pub bad_pages: Vec<(u64, String)>,
}

impl PageVerifyReport {
    /// True when every page verified (or the format has no checksums).
    pub fn is_clean(&self) -> bool {
        self.bad_pages.is_empty()
    }

    /// True when the file carries per-page checksums at all.
    pub fn checksummed(&self) -> bool {
        self.format_version >= 2
    }
}

/// File-backed pager with a simple write-back page cache.
///
/// The cache holds every dirty page plus up to `cache_limit` clean pages;
/// eviction is not LRU-precise (it drops an arbitrary clean page), which is
/// adequate for the workload's sequential build + random probe pattern.
pub struct FilePager {
    file: Box<dyn VfsFile>,
    cache: HashMap<PageId, CachedPage>,
    cache_limit: usize,
    page_count: u64,
    free: Vec<PageId>,
    /// On-disk format version; 1 (legacy) is served read-only.
    format_version: u8,
}

struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
}

/// Splits a physical page into payload or reports why it is damaged.
/// All-zero pages are valid empties (`Ok(None)`).
fn verify_phys_page(phys: &[u8], id: u64) -> Result<Option<&[u8]>> {
    debug_assert_eq!(phys.len(), PHYS_PAGE_SIZE);
    if phys.iter().all(|&b| b == 0) {
        return Ok(None);
    }
    let payload = &phys[..PAGE_SIZE];
    let stored_crc = codec::u32_at(phys, PAGE_SIZE, "page trailer crc")?;
    let magic = codec::u32_at(phys, PAGE_SIZE + 4, "page trailer magic")?;
    if magic != PAGE_TRAILER_MAGIC {
        return Err(KvError::corrupt_page(
            id,
            format!("bad page trailer magic {magic:#010x} (torn or rotten page)"),
        ));
    }
    if crc32(payload) != stored_crc {
        return Err(KvError::corrupt_page(
            id,
            "page checksum mismatch (torn or rotten page)",
        ));
    }
    Ok(Some(payload))
}

impl FilePager {
    /// Opens (creating if absent) a pager over `path` on the real
    /// filesystem.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_vfs(&StdVfs::arc(), path)
    }

    /// Opens (creating if absent) a pager over `path` through `vfs`.
    pub fn open_with_vfs(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Self> {
        let existed = vfs.exists(path);
        let file = vfs.open(path)?;
        if !existed {
            // Make the file's directory entry durable (see `vfs`).
            vfs.sync_parent_dir(path)?;
        }
        let mut len = file.len()?;
        if len % PHYS_PAGE_SIZE as u64 != 0 {
            if len < PHYS_PAGE_SIZE as u64 {
                // A crash can tear the initial header write of a store
                // that never held data; restart it from scratch.
                file.set_len(0)?;
                len = 0;
            } else {
                return Err(KvError::corrupt(format!(
                    "file length {len} is not a multiple of the physical page size"
                )));
            }
        }
        let mut page_count = len / PHYS_PAGE_SIZE as u64;
        let mut format_version = 2;
        if page_count == 0 {
            // Write the header page eagerly so page 0 always exists.
            let pager = FilePager {
                file,
                cache: HashMap::new(),
                cache_limit: 4096,
                page_count: 1,
                free: Vec::new(),
                format_version,
            };
            pager.write_through(PageId(0), &[0u8; PAGE_SIZE])?;
            return Ok(pager);
        }
        // Distinguish checksummed (v2) files from legacy (v1) ones by
        // page 0's trailer: v2 closes it with `PAGE_TRAILER_MAGIC`,
        // legacy headers are zero past byte 22, and anything else means
        // the header page itself is damaged.
        let mut page0 = vec![0u8; PHYS_PAGE_SIZE];
        file.read_exact_at(0, &mut page0)?;
        let trailer_magic = codec::u32_at(&page0, PAGE_SIZE + 4, "page trailer magic")?;
        if trailer_magic != PAGE_TRAILER_MAGIC && !page0.iter().all(|&b| b == 0) {
            if page0[PAGE_SIZE..].iter().all(|&b| b == 0) {
                format_version = 1;
            } else {
                return Err(KvError::corrupt_page(
                    0,
                    "header page trailer is damaged (neither checksummed nor legacy)",
                ));
            }
        }
        if format_version == 2 {
            // Fail fast on a rotten header rather than at first read.
            verify_phys_page(&page0, 0)?;
        }
        if format_version == 1 {
            page_count = len / PHYS_PAGE_SIZE as u64;
        }
        Ok(FilePager {
            file,
            cache: HashMap::new(),
            cache_limit: 4096,
            page_count,
            free: Vec::new(),
            format_version,
        })
    }

    /// On-disk format version: 1 = legacy (read-only), 2 = checksummed.
    pub fn format_version(&self) -> u8 {
        self.format_version
    }

    /// True when the file is legacy-format and rejects writes.
    pub fn is_read_only(&self) -> bool {
        self.format_version < 2
    }

    /// Verifies the trailer checksum of every page in the file,
    /// bypassing the cache. Legacy files carry no checksums, so their
    /// report only counts pages.
    pub fn verify_pages(&self) -> Result<PageVerifyReport> {
        let total = self.file.len()? / PHYS_PAGE_SIZE as u64;
        let mut report = PageVerifyReport {
            format_version: self.format_version,
            total_pages: total,
            zero_pages: 0,
            valid_pages: 0,
            bad_pages: Vec::new(),
        };
        if self.format_version < 2 {
            return Ok(report);
        }
        let mut phys = vec![0u8; PHYS_PAGE_SIZE];
        for id in 0..total {
            self.file
                .read_exact_at(id * PHYS_PAGE_SIZE as u64, &mut phys)?;
            match verify_phys_page(&phys, id) {
                Ok(None) => report.zero_pages += 1,
                Ok(Some(_)) => report.valid_pages += 1,
                Err(e) => report.bad_pages.push((id, e.to_string())),
            }
        }
        Ok(report)
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        if self.cache.len() <= self.cache_limit {
            return Ok(());
        }
        // Flush one dirty page if everything is dirty; otherwise drop a
        // clean one.
        let clean = self.cache.iter().find(|(_, p)| !p.dirty).map(|(&id, _)| id);
        match clean {
            Some(id) => {
                self.cache.remove(&id);
            }
            None => {
                if let Some(&id) = self.cache.keys().next() {
                    if let Some(page) = self.cache.remove(&id) {
                        self.write_through(id, &page.data)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes one page to the file with its checksum trailer.
    fn write_through(&self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let mut phys = vec![0u8; PHYS_PAGE_SIZE];
        phys[..PAGE_SIZE].copy_from_slice(data);
        phys[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32(data).to_le_bytes());
        phys[PAGE_SIZE + 4..].copy_from_slice(&PAGE_TRAILER_MAGIC.to_le_bytes());
        self.file.write_all_at(id.0 * PHYS_PAGE_SIZE as u64, &phys)
    }
}

impl Pager for FilePager {
    fn allocate(&mut self) -> Result<PageId> {
        if self.is_read_only() {
            return Err(KvError::ReadOnly);
        }
        if let Some(id) = self.free.pop() {
            self.cache.insert(
                id,
                CachedPage {
                    data: vec![0; PAGE_SIZE],
                    dirty: true,
                },
            );
            return Ok(id);
        }
        let id = PageId(self.page_count);
        self.page_count += 1;
        self.evict_if_needed()?;
        self.cache.insert(
            id,
            CachedPage {
                data: vec![0; PAGE_SIZE],
                dirty: true,
            },
        );
        Ok(id)
    }

    fn read(&self, id: PageId) -> Result<Vec<u8>> {
        obs::counter!("kvstore_pager_page_reads_total").inc();
        obs::trace::count("pages.read", 1);
        if id.0 >= self.page_count {
            return Err(KvError::corrupt_page(id.0, "read of unallocated page"));
        }
        if let Some(p) = self.cache.get(&id) {
            return Ok(p.data.clone());
        }
        obs::counter!("kvstore_pager_disk_page_reads_total").inc();
        let file_pages = self.file.len()? / PHYS_PAGE_SIZE as u64;
        if id.0 >= file_pages {
            // Allocated but never flushed nor written: logically zeroed.
            return Ok(vec![0; PAGE_SIZE]);
        }
        let mut phys = vec![0u8; PHYS_PAGE_SIZE];
        self.file
            .read_exact_at(id.0 * PHYS_PAGE_SIZE as u64, &mut phys)?;
        if self.format_version < 2 {
            // Legacy pages are raw payloads with no trailer.
            return Ok(phys);
        }
        let verified = verify_phys_page(&phys, id.0);
        if verified.is_err() {
            obs::counter!("kvstore_pager_corrupt_pages_total").inc();
        }
        match verified? {
            Some(payload) => Ok(payload.to_vec()),
            None => Ok(vec![0; PAGE_SIZE]),
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        if self.is_read_only() {
            return Err(KvError::ReadOnly);
        }
        if id.0 >= self.page_count {
            return Err(KvError::corrupt_page(id.0, "write of unallocated page"));
        }
        obs::counter!("kvstore_pager_page_writes_total").inc();
        match self.cache.get_mut(&id) {
            Some(p) => {
                p.data.copy_from_slice(data);
                p.dirty = true;
            }
            None => {
                self.evict_if_needed()?;
                self.cache.insert(
                    id,
                    CachedPage {
                        data: data.to_vec(),
                        dirty: true,
                    },
                );
            }
        }
        Ok(())
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        if self.is_read_only() {
            return Err(KvError::ReadOnly);
        }
        if id.is_null() || id.0 >= self.page_count {
            return Err(KvError::corrupt_page(id.0, "free of invalid page"));
        }
        self.cache.remove(&id);
        self.free.push(id);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    fn sync(&mut self) -> Result<()> {
        if self.is_read_only() {
            return Err(KvError::ReadOnly);
        }
        obs::counter!("kvstore_pager_syncs_total").inc();
        obs::trace::count("pager.syncs", 1);
        // Grow the file to cover all allocated pages, then flush dirty pages.
        let want = self.page_count * PHYS_PAGE_SIZE as u64;
        if self.file.len()? < want {
            self.file.set_len(want)?;
        }
        for (&id, page) in self.cache.iter_mut() {
            if page.dirty {
                page.dirty = false;
            } else {
                continue;
            }
            let mut phys = vec![0u8; PHYS_PAGE_SIZE];
            phys[..PAGE_SIZE].copy_from_slice(&page.data);
            phys[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32(&page.data).to_le_bytes());
            phys[PAGE_SIZE + 4..].copy_from_slice(&PAGE_TRAILER_MAGIC.to_le_bytes());
            self.file
                .write_all_at(id.0 * PHYS_PAGE_SIZE as u64, &phys)?;
        }
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(pager: &mut dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert!(!a.is_null());

        let mut pa = vec![0u8; PAGE_SIZE];
        pa[0] = 0xAA;
        pa[PAGE_SIZE - 1] = 0x55;
        pager.write(a, &pa).unwrap();
        assert_eq!(pager.read(a).unwrap(), pa);
        assert_eq!(pager.read(b).unwrap(), vec![0u8; PAGE_SIZE]);

        pager.free(b).unwrap();
        let c = pager.allocate().unwrap();
        // freed page is recycled and zeroed (mem) or fresh (file)
        assert_eq!(pager.read(c).unwrap(), vec![0u8; PAGE_SIZE]);
        pager.sync().unwrap();
        assert_eq!(pager.read(a).unwrap(), pa);
    }

    #[test]
    fn mem_pager_basics() {
        let mut p = MemPager::new();
        exercise(&mut p);
        assert!(p.read(PageId(999)).is_err());
        assert!(p.free(PageId::NULL).is_err());
    }

    #[test]
    fn file_pager_basics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pager_basics.db");
        let _ = std::fs::remove_file(&path);

        let a;
        let mut pa = vec![0u8; PAGE_SIZE];
        {
            let mut p = FilePager::open(&path).unwrap();
            exercise(&mut p);
            a = p.allocate().unwrap();
            pa[7] = 42;
            p.write(a, &pa).unwrap();
            p.sync().unwrap();
        }
        // Reopen and verify durability.
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.format_version(), 2);
        assert_eq!(p.read(a).unwrap(), pa);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_rejects_torn_files() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        std::fs::write(&path, vec![0u8; PHYS_PAGE_SIZE + 17]).unwrap();
        assert!(matches!(
            FilePager::open(&path),
            Err(KvError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_recovers_a_torn_header_only_file() {
        // A crash during the very first header write can leave a short
        // file; that store never held data, so it restarts cleanly.
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_header.db");
        std::fs::write(&path, vec![0u8; 1234]).unwrap();
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.page_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_cache_eviction_preserves_data() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evict.db");
        let _ = std::fs::remove_file(&path);
        let mut p = FilePager::open(&path).unwrap();
        p.cache_limit = 4; // force eviction
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let id = p.allocate().unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = i;
            p.write(id, &page).unwrap();
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id).unwrap()[0], i as u8);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_byte_in_page_payload_reads_as_corrupt() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bitrot.db");
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let mut p = FilePager::open(&path).unwrap();
            id = p.allocate().unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[100] = 7;
            p.write(id, &page).unwrap();
            p.sync().unwrap();
        }
        // Rot one payload byte on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[id.0 as usize * PHYS_PAGE_SIZE + 100] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let p = FilePager::open(&path).unwrap();
        match p.read(id) {
            Err(KvError::Corrupt { page, .. }) => assert_eq!(page, Some(id.0)),
            other => panic!("expected checksum failure, got {other:?}"),
        }
        let report = p.verify_pages().unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.bad_pages.len(), 1);
        assert_eq!(report.bad_pages[0].0, id.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_page_write_reads_as_corrupt_with_page_number() {
        // Tear a flushed page in half the way a power cut mid-write
        // would: first half new bytes, second half stale (zeros).
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tornpage.db");
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let mut p = FilePager::open(&path).unwrap();
            id = p.allocate().unwrap();
            let page = vec![0xABu8; PAGE_SIZE];
            p.write(id, &page).unwrap();
            p.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let start = id.0 as usize * PHYS_PAGE_SIZE;
        for b in &mut bytes[start + PHYS_PAGE_SIZE / 2..start + PHYS_PAGE_SIZE] {
            *b = 0;
        }
        std::fs::write(&path, &bytes).unwrap();

        let p = FilePager::open(&path).unwrap();
        match p.read(id) {
            Err(KvError::Corrupt { page, context }) => {
                assert_eq!(page, Some(id.0));
                assert!(context.contains("torn"), "context: {context}");
            }
            other => panic!("expected torn-page corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v1_files_are_detected_and_read_only() {
        // Handcraft a minimal legacy (version-1) store: raw 4096-byte
        // pages, no trailers. Page 0 is the tree header, page 1 a leaf
        // holding one entry.
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy_v1.db");
        let mut header = vec![0u8; PHYS_PAGE_SIZE];
        header[0..4].copy_from_slice(&0x5852_4B56u32.to_le_bytes()); // XRKV
        header[4..6].copy_from_slice(&1u16.to_le_bytes()); // tree version
        header[6..14].copy_from_slice(&1u64.to_le_bytes()); // root = page 1
        header[14..22].copy_from_slice(&1u64.to_le_bytes()); // count = 1
        let mut leaf = vec![0u8; PHYS_PAGE_SIZE];
        leaf[0] = 2; // TYPE_LEAF
        leaf[1..3].copy_from_slice(&1u16.to_le_bytes()); // one entry
        leaf[3..11].copy_from_slice(&0u64.to_le_bytes()); // no next leaf
        leaf[11..13].copy_from_slice(&1u16.to_le_bytes()); // klen
        leaf[13..17].copy_from_slice(&1u32.to_le_bytes()); // inline, 1 byte
        leaf[17] = b'k';
        leaf[18] = b'v';
        let mut bytes = header;
        bytes.extend_from_slice(&leaf);
        std::fs::write(&path, &bytes).unwrap();

        let mut p = FilePager::open(&path).unwrap();
        assert_eq!(p.format_version(), 1);
        assert!(p.is_read_only());
        assert_eq!(p.read(PageId(1)).unwrap()[17], b'k');
        assert!(matches!(p.allocate(), Err(KvError::ReadOnly)));
        let zero_page = [0u8; PAGE_SIZE];
        assert!(matches!(
            p.write(PageId(1), &zero_page),
            Err(KvError::ReadOnly)
        ));
        let report = p.verify_pages().unwrap();
        assert_eq!(report.format_version, 1);
        assert!(!report.checksummed());
        assert!(report.is_clean());

        // The tree layer reads the legacy entry back.
        let tree = crate::BTree::new(p).unwrap();
        assert_eq!(tree.get(b"k").unwrap(), Some(b"v".to_vec()));
        std::fs::remove_file(&path).unwrap();
    }
}

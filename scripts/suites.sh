#!/usr/bin/env bash
# Canonical test-suite definitions, shared by scripts/check.sh and CI.
#
# Each suite is one shell function; the file doubles as a dispatcher:
#
#   scripts/suites.sh <suite> [<suite>...]
#
# Suites:
#   release_smoke  multi-thread smoke tests rerun in release, where
#                  aggressive reordering gives a data race a real chance
#   torture        fault-injection + crash-recovery sweeps (release —
#                  debug builds stride the sweeps for speed)
#   observability  obs invariants, differential oracles, tracer
#                  well-nestedness, metrics-overhead bench
#   ingest         streaming-vs-DOM ingest differential oracle (byte-
#                  identical stores) + scanner fuzz sweep + a release-
#                  mode medium-corpus ingest bench smoke
#   serve          server lifecycle tests (shedding, drain, SIGTERM,
#                  corruption-over-HTTP) + a short overload run of the
#                  bench_serve load generator
#   maintenance    online-maintenance guarantees: differential oracle
#                  (incremental == from-scratch), full stride-1 power-
#                  cut sweep of the updating store (release), live
#                  updates over HTTP, and the update/read-tail bench
#   compress       store format v4 (compressed postings): property/fuzz
#                  round-trips + corruption sweeps, v3-vs-v4 behavioural
#                  differential, and the size/scan-neutrality bench
#   analysis       xlint over the live workspace + its golden fixtures,
#                  then the xcheck model checker (exhaustive bounded DFS
#                  over the distilled concurrency models + seeded bugs)
#   tsan           ThreadSanitizer over the thread-heavy suites
#                  (requires a nightly toolchain with rust-src)
#   miri           Miri over the interpreter-friendly concurrency and
#                  unsafe-bearing crates (requires nightly + miri)
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."

suite_release_smoke() {
    cargo test --release -q --test concurrent_engine
    cargo test --release -q -p invindex --test cache_prop
    cargo test --release -q -p invindex --test lock_rank
}

suite_torture() {
    cargo test --release -q -p kvstore --test torture
    cargo test --release -q -p kvstore --test fault_injection
    cargo test --release -q --test storage_bitflips
}

suite_observability() {
    cargo test -q -p obs
    cargo test -q -p slca --test differential
    cargo test -q -p xrefine --test dp_oracle
    cargo test --release -q -p xrefine --test trace_concurrency
    OBS_BENCH_FRACTION="${OBS_BENCH_FRACTION:-0.02}" \
    OBS_BENCH_REPS="${OBS_BENCH_REPS:-2}" \
        cargo run --release -q -p bench --bin bench_obs
}

suite_ingest() {
    cargo test --release -q -p invindex --test ingest_differential
    cargo test -q -p xmldom --test scan_fuzz
    INGEST_AUTHORS="${INGEST_AUTHORS:-20000}" \
    INGEST_REPS="${INGEST_REPS:-1}" \
        cargo run --release -q -p bench --bin bench_ingest
}

suite_serve() {
    cargo test -q -p xserve
    cargo test --release -q -p xserve --test server_lifecycle
    cargo test --release -q -p bench --test percentile_prop
    SERVE_BENCH_SECS="${SERVE_BENCH_SECS:-2}" \
    SERVE_BENCH_FRACTION="${SERVE_BENCH_FRACTION:-0.02}" \
        cargo run --release -q -p bench --bin bench_serve
}

suite_maintenance() {
    cargo test --release -q -p invindex --test maint_differential
    cargo test --release -q -p xrefine --test live_differential
    MAINT_TORTURE_STRIDE="${MAINT_TORTURE_STRIDE:-1}" \
        cargo test --release -q -p invindex --test maint_torture
    cargo test --release -q -p xserve --test live_updates
    UPDATE_BENCH_SECS="${UPDATE_BENCH_SECS:-2}" \
    UPDATE_BENCH_RECORDS="${UPDATE_BENCH_RECORDS:-150}" \
        cargo run --release -q -p bench --bin bench_update
}

suite_compress() {
    cargo test --release -q -p invindex --test compress_prop
    cargo test --release -q -p xrefine --test compress_differential
    cargo test --release -q -p invindex --test maint_differential \
        maintenance_preserves_the_store_format_version
    COMPRESS_BENCH_FRACTION="${COMPRESS_BENCH_FRACTION:-0.1}" \
    COMPRESS_BENCH_ROUNDS="${COMPRESS_BENCH_ROUNDS:-3}" \
        cargo run --release -q -p bench --bin bench_compress
}

suite_analysis() {
    cargo run -q -p xlint -- --workspace
    cargo run -q -p xlint -- --fixtures
    cargo test -q -p xcheck
}

# The debug-only lock-rank checker and the tracer both lean on ordering
# the optimizer is free to break; TSan watches the real interleavings.
# Needs nightly + rust-src (-Zbuild-std rebuilds std instrumented).
suite_tsan() {
    local target="${TSAN_TARGET:-x86_64-unknown-linux-gnu}"
    local tc="${TSAN_TOOLCHAIN:-nightly}"
    for t in "--test concurrent_engine" \
             "-p invindex --test cache_prop" \
             "-p xrefine --test trace_concurrency"; do
        # shellcheck disable=SC2086  # $t is a word list on purpose
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo "+${tc}" test -Zbuild-std --target "$target" \
            --release -q $t
    done
}

# Miri interprets the program, so it sees UB (dangling refs, aliasing
# violations, leaks) that native runs miss; it covers the crates whose
# tests stay inside the interpreter's ability — obs (the lock-rank and
# registry internals) and xcheck (the scheduler/shim machinery). xserve
# is out: signal.rs uses inline asm and raw syscalls Miri cannot model.
suite_miri() {
    local tc="${MIRI_TOOLCHAIN:-nightly}"
    cargo "+${tc}" miri test -q -p obs
    cargo "+${tc}" miri test -q -p xcheck
}

if [[ "${BASH_SOURCE[0]}" == "$0" ]]; then
    if [[ $# -eq 0 ]]; then
        echo "usage: $0 <suite> [<suite>...]" >&2
        echo "suites: release_smoke torture observability ingest serve maintenance compress analysis tsan miri" >&2
        exit 2
    fi
    for suite in "$@"; do
        if ! declare -F "suite_${suite}" >/dev/null; then
            echo "unknown suite: ${suite}" >&2
            exit 2
        fi
        echo "==> suite: ${suite}"
        "suite_${suite}"
    done
fi

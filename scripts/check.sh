#!/usr/bin/env bash
# The repo's pre-merge gate: formatting, lints (warnings are errors) and
# the full test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q

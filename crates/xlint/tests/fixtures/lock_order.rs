// xlint-fixture: path=crates/invindex/src/cache.rs
// Lock hierarchy under the fixture config: kvindex.store = 10,
// cache.shard = 20. Ranks must be strictly increasing while held.

fn unannotated(&self) {
    let g = self.m.lock();
}

fn unknown_name(&self) {
    // xlint::lock(no.such.lock)
    let g = self.m.lock();
}

fn inverted(&self) {
    let shard = self.shard.lock(); // xlint::lock(cache.shard)
    let store = self.store.read(); // xlint::lock(kvindex.store)
}

fn clean_nesting(&self) {
    let store = self.store.read(); // xlint::lock(kvindex.store)
    let shard = self.shard.lock(); // xlint::lock(cache.shard)
}

fn early_drop(&self) {
    let shard = self.shard.lock(); // xlint::lock(cache.shard)
    drop(shard);
    let store = self.store.read(); // xlint::lock(kvindex.store)
}

fn scoped_release(&self) {
    {
        let shard = self.shard.lock(); // xlint::lock(cache.shard)
        shard.touch();
    }
    let store = self.store.read(); // xlint::lock(kvindex.store)
}

fn same_rank_reacquire(&self) {
    let a = self.shard_a.lock(); // xlint::lock(cache.shard)
    let b = self.shard_b.lock(); // xlint::lock(cache.shard)
}

fn temporary_expires_at_semicolon(&self) {
    self.shard.lock().touch(); // xlint::lock(cache.shard)
    let store = self.store.read(); // xlint::lock(kvindex.store)
}

//! Criterion bench: the B+-tree substrate (index storage path of §VII)
//! against the BTreeMap-backed reference store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvstore::{KvStore, MemKv, MemTreeKv};
use std::hint::black_box;

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("keyword/{:08}", (i * 2654435761usize) % n).into_bytes())
        .collect()
}

fn bench_kv(c: &mut Criterion) {
    let n = 10_000;
    let ks = keys(n);

    let mut group = c.benchmark_group("kv_insert_10k");
    group.bench_function(BenchmarkId::from_parameter("btree"), |b| {
        b.iter(|| {
            let mut t = MemTreeKv::new().unwrap();
            for k in &ks {
                t.put(k, b"posting-list-bytes").unwrap();
            }
            black_box(t.len())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("btreemap"), |b| {
        b.iter(|| {
            let mut t = MemKv::new();
            for k in &ks {
                t.put(k, b"posting-list-bytes").unwrap();
            }
            black_box(t.len())
        })
    });
    group.finish();

    let mut tree = MemTreeKv::new().unwrap();
    for k in &ks {
        tree.put(k, b"posting-list-bytes").unwrap();
    }
    let mut group = c.benchmark_group("kv_probe");
    group.bench_function("btree_get", |b| {
        b.iter(|| {
            for k in ks.iter().step_by(37) {
                black_box(tree.get(k).unwrap());
            }
        })
    });
    group.bench_function("btree_scan_prefix", |b| {
        b.iter(|| black_box(tree.scan_prefix(b"keyword/0000").unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);

//! Figure 6: Top-3 refinement time over data sets of increasing size
//! (20% up to 200% of the DBLP corpus), for Partition and SLE.
//!
//! Expected shape (paper §VIII-B): both near-linear in the data size;
//! SLE shows a visible jump somewhere in the 60%→80% step because its
//! cost depends on how early the final Top-K RQs are discovered.
//!
//! Corpora are rendered by the streaming XML writer and ingested with
//! the streaming structural-index pipeline (`invindex::build_streaming`)
//! rather than DOM-first parsing — the two produce identical indexes,
//! and the streaming path's memory profile is what makes the >100%
//! sizes practical in one run.
//!
//! Since store format v4 the figure is measured over the *persisted
//! compressed store* served through [`KvBackedIndex`] (blocked
//! front-coded lists decoded on demand, default cache budget), not an
//! in-memory index: the timings include list decode and cache effects,
//! which is what a deployed engine pays. A method note in the output
//! records this so the figure is not compared against pre-v4 runs
//! unlabelled.

use bench::{dblp_config, f3, time_ms, Table};
use datagen::{generate_workload, write_dblp_xml, PerturbKind, WorkloadConfig};
use invindex::reader::IndexReader;
use invindex::{build_streaming, persist, KvBackedIndex};
use kvstore::MemKv;
use std::sync::Arc;
use xrefine::{Algorithm, EngineConfig, Query, XRefineEngine};

fn main() {
    let mut t = Table::new(&["data size", "elements", "Partition (ms)", "SLE (ms)"]);
    for pct in [20u32, 40, 60, 80, 100, 150, 200] {
        let cfg = dblp_config().scaled(pct as f64 / 100.0);
        let xml = String::from_utf8(write_dblp_xml(&cfg, Vec::new()).expect("render corpus"))
            .expect("utf8 corpus");
        let index = build_streaming(&xml, 4).expect("streaming ingest");
        let doc = index.document().clone();
        let elements = doc.len();
        let workload: Vec<_> = generate_workload(
            &doc,
            &WorkloadConfig {
                per_kind: 11,
                ..Default::default()
            },
        )
        .into_iter()
        .filter(|q| q.kind != PerturbKind::None)
        .take(40)
        .collect();

        // Serve from the persisted compressed (v4) store, as deployed.
        let mut store = MemKv::new();
        persist::persist(&index, &mut store).expect("persist compressed store");
        let reader = Arc::new(KvBackedIndex::open(Box::new(store)).expect("open compressed store"));
        let mut e = XRefineEngine::from_reader(
            Arc::clone(&reader) as Arc<dyn IndexReader>,
            EngineConfig {
                algorithm: Algorithm::Partition,
                k: 3,
                ..Default::default()
            },
        );
        let tp = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        e.config_mut().algorithm = Algorithm::ShortListEager;
        let ts = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        t.row(vec![
            format!("{pct}%"),
            format!("{elements}"),
            f3(tp),
            f3(ts),
        ]);
    }
    println!("== Figure 6: avg per-query Top-3 refinement time vs data size ==\n");
    println!(
        "method: queries served from the persisted compressed store \
         (format v{}) through KvBackedIndex — timings include on-demand \
         block decode and list-cache effects, not in-memory index access\n",
        persist::FORMAT_VERSION
    );
    t.print();
}

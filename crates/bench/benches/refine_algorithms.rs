//! Criterion bench: the three refinement algorithms (Figure 4's
//! comparison) plus the two plain-SLCA baselines on a fixed workload.

use bench::{dblp, engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use std::hint::black_box;
use xrefine::{Algorithm, Query};

fn bench_refinement(c: &mut Criterion) {
    let doc = dblp(0.1);
    let workload: Vec<Query> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 2,
            ..Default::default()
        },
    )
    .into_iter()
    .filter(|q| q.kind != PerturbKind::None)
    .map(|q| Query::from_keywords(q.keywords))
    .collect();

    let mut e = engine(doc, Algorithm::Partition, 1);
    let mut group = c.benchmark_group("refine_top1");
    for (label, alg) in [
        ("stack_refine", Algorithm::StackRefine),
        ("partition", Algorithm::Partition),
        ("sle", Algorithm::ShortListEager),
    ] {
        e.config_mut().algorithm = alg;
        group.bench_with_input(BenchmarkId::from_parameter(label), &workload, |b, wl| {
            b.iter(|| {
                for q in wl {
                    black_box(e.answer_query(q.clone()).expect("query answered"));
                }
            })
        });
    }
    group.finish();

    let e = bench::engine(dblp(0.1), Algorithm::Partition, 1);
    let mut group = c.benchmark_group("baseline_slca");
    for (label, method) in [
        ("stack_slca", slca::slca_stack as xrefine::SlcaMethod),
        ("scan_slca", slca::slca_scan_eager),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &workload, |b, wl| {
            b.iter(|| {
                for q in wl {
                    black_box(e.baseline_slca(q, method).expect("slca computed"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);

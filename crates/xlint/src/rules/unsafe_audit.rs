//! `unsafe-audit`: every production `unsafe` (block, fn, impl) must
//! carry a `// xlint::safety(<invariant>)` annotation naming the
//! invariant it relies on, on the same line or the line above. The
//! annotations double as the source of the generated SAFETY.md
//! inventory (see [`inventory`] and [`render_inventory`]); the
//! workspace runner flags SAFETY.md when it drifts out of date.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "unsafe-audit";

pub fn check(file: &SourceFile, _config: &Config, out: &mut Vec<Finding>) {
    for t in file.code_tokens() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" || file.is_test_line(t.line) {
            continue;
        }
        match file.safety_at(t.line) {
            Some(inv) if !inv.trim().is_empty() => {}
            Some(_) => super::emit(
                out,
                file,
                RULE,
                t.line,
                t.col,
                "`unsafe` has an empty `xlint::safety(...)` annotation".into(),
                "state the invariant the block relies on".into(),
            ),
            None => super::emit(
                out,
                file,
                RULE,
                t.line,
                t.col,
                "`unsafe` without a `// xlint::safety(...)` invariant".into(),
                "annotate with `// xlint::safety(<invariant this relies on>)`".into(),
            ),
        }
    }
}

/// One audited `unsafe` site, for the SAFETY.md inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub path: String,
    pub line: usize,
    pub invariant: String,
}

/// Collects every annotated production `unsafe` site across the parsed
/// files, in (path, line) order. Unannotated sites are findings, not
/// inventory entries.
pub fn inventory(files: &[SourceFile]) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for file in files {
        for t in file.code_tokens() {
            if t.kind != TokenKind::Ident || t.text != "unsafe" || file.is_test_line(t.line) {
                continue;
            }
            if let Some(inv) = file.safety_at(t.line) {
                if !inv.trim().is_empty() {
                    sites.push(UnsafeSite {
                        path: file.path.clone(),
                        line: t.line,
                        invariant: inv.trim().to_string(),
                    });
                }
            }
        }
    }
    sites.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    sites
}

/// Renders the inventory as the generated SAFETY.md section body (the
/// text between the `xlint:safety` markers).
pub fn render_inventory(sites: &[UnsafeSite]) -> String {
    let mut out = String::new();
    out.push_str("| location | invariant relied upon |\n|---|---|\n");
    if sites.is_empty() {
        out.push_str("| *(none)* | the workspace currently contains no production `unsafe` |\n");
    }
    for s in sites {
        out.push_str(&format!("| `{}:{}` | {} |\n", s.path, s.line, s.invariant));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/xserve/src/signal.rs", src, FileKind::Production)
    }

    #[test]
    fn annotated_unsafe_is_clean_and_inventoried() {
        let f = parse(
            "fn install() {\n\
                 // xlint::safety(act outlives the syscall; layout is the kernel ABI)\n\
                 unsafe { asm() }\n\
             }\n",
        );
        let mut out = Vec::new();
        check(&f, &Config::workspace_defaults(), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let inv = inventory(std::slice::from_ref(&f));
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].line, 3);
        assert!(inv[0].invariant.contains("kernel ABI"));
    }

    #[test]
    fn bare_and_empty_annotations_are_findings() {
        let f = parse(
            "fn a() { unsafe { x() } }\n\
             fn b() {\n\
                 // xlint::safety()\n\
                 unsafe { y() }\n\
             }\n",
        );
        let mut out = Vec::new();
        check(&f, &Config::workspace_defaults(), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 4);
    }

    #[test]
    fn test_regions_and_comment_mentions_are_exempt() {
        let f = parse(
            "// unsafe discussed in prose\n\
             fn a() { let s = \"unsafe\"; }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { unsafe { z() } }\n\
             }\n",
        );
        let mut out = Vec::new();
        check(&f, &Config::workspace_defaults(), &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(inventory(std::slice::from_ref(&f)).is_empty());
    }

    #[test]
    fn inventory_renders_as_a_table() {
        let sites = vec![UnsafeSite {
            path: "crates/xserve/src/signal.rs".into(),
            line: 86,
            invariant: "act outlives the syscall".into(),
        }];
        let md = render_inventory(&sites);
        assert!(md.contains("| `crates/xserve/src/signal.rs:86` | act outlives the syscall |"));
        assert!(render_inventory(&[]).contains("*(none)*"));
    }
}

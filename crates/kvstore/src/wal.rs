//! Write-ahead log with CRC-checked records and torn-tail recovery.
//!
//! The index build of §VII runs against a durable store (Berkeley DB in
//! the paper). Our B+-tree alone is not crash-safe — a torn page write
//! could lose committed data — so [`crate::durable::DurableKv`] layers
//! this WAL in front of it: every mutation is appended (length-prefixed,
//! CRC32-guarded) and fsynced before being applied; on open the log is
//! replayed and any torn tail is truncated away.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! [len: u32][crc32: u32][kind: u8][payload: len-5 bytes]
//! kind 1 = Put    payload = [klen: u32][key][value]
//! kind 2 = Delete payload = [klen: u32][key]
//! kind 3 = Checkpoint (no payload)
//! ```

use crate::error::Result;
use crate::fsutil::sync_parent_dir;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        key: Vec<u8>,
    },
    /// Marks that all preceding records are reflected in a checkpointed
    /// base state; replay may start after the *last* checkpoint.
    Checkpoint,
}

/// CRC-32 (IEEE 802.3, reflected) — implemented locally; the workspace
/// keeps its dependency list minimal (DESIGN.md §5).
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// An append-only write-ahead log over one file.
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`. When the file is
    /// freshly created, the parent directory is fsynced as well — without
    /// that, a crash right after creation can lose the file (and with it
    /// every record subsequently acknowledged) even though each append
    /// fsyncs the file itself.
    pub fn open(path: &Path) -> Result<Self> {
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        if !existed {
            file.sync_data()?;
            sync_parent_dir(path)?;
        }
        Ok(Wal {
            path: path.to_path_buf(),
            file,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record and flushes it to stable storage.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let body = encode_body(record);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Reads every intact record from the start of the log. A torn or
    /// corrupt tail ends replay silently (those records were never
    /// acknowledged as committed); corruption *followed by* intact
    /// records is reported as an error.
    pub fn replay(&mut self) -> Result<Vec<WalRecord>> {
        let mut buf = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            if pos + 8 > buf.len() {
                break; // torn length header
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            if pos + 8 + len > buf.len() {
                break; // torn body
            }
            let body = &buf[pos + 8..pos + 8 + len];
            if crc32(body) != crc {
                // A corrupt record invalidates everything after it; if
                // this is the tail, treat it as torn.
                break;
            }
            match decode_body(body) {
                Some(r) => records.push(r),
                None => break,
            }
            pos += 8 + len;
        }
        // position the append cursor at the end of the intact prefix
        self.file.seek(SeekFrom::Start(pos as u64))?;
        self.file.set_len(pos as u64)?;
        Ok(records)
    }

    /// Truncates the log to empty (after the state has been checkpointed
    /// elsewhere). Both the file and its directory are fsynced so the
    /// truncation — the moment recovery stops depending on the log — is
    /// itself durable.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        sync_parent_dir(&self.path)?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len(&mut self) -> Result<u64> {
        Ok(self.file.seek(SeekFrom::End(0))?)
    }

    pub fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

fn encode_body(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Put { key, value } => {
            out.push(1);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(value);
        }
        WalRecord::Delete { key } => {
            out.push(2);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
        }
        WalRecord::Checkpoint => out.push(3),
    }
    out
}

fn decode_body(body: &[u8]) -> Option<WalRecord> {
    match body.first()? {
        1 => {
            let klen = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
            let key = body.get(5..5 + klen)?.to_vec();
            let value = body.get(5 + klen..)?.to_vec();
            Some(WalRecord::Put { key, value })
        }
        2 => {
            let klen = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
            if body.len() != 5 + klen {
                return None;
            }
            let key = body.get(5..5 + klen)?.to_vec();
            Some(WalRecord::Delete { key })
        }
        3 => (body.len() == 1).then_some(WalRecord::Checkpoint),
        _ => None,
    }
}

/// Validates a record frame at `buf[pos..]`; exposed for fuzz-style tests.
pub fn frame_is_intact(buf: &[u8], pos: usize) -> bool {
    if pos + 8 > buf.len() {
        return false;
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    if pos + 8 + len > buf.len() {
        return false;
    }
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
    crc32(&buf[pos + 8..pos + 8 + len]) == crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kvwal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        let records = vec![
            WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete { key: b"a".to_vec() },
            WalRecord::Checkpoint,
            WalRecord::Put {
                key: b"b".to_vec(),
                value: vec![0xFF; 1000],
            },
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), records);
        // replay is idempotent
        assert_eq!(wal.replay().unwrap(), records);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec(),
            })
            .unwrap();
            wal.append(&WalRecord::Put {
                key: b"k2".to_vec(),
                value: b"v2".to_vec(),
            })
            .unwrap();
        }
        // simulate a crash mid-write: chop bytes off the tail
        let full = std::fs::read(&path).unwrap();
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            assert!(records.len() <= 2);
            // the intact prefix is always a prefix of the full history
            for (i, r) in records.iter().enumerate() {
                let expected_key = if i == 0 { b"k1" } else { b"k2" };
                match r {
                    WalRecord::Put { key, .. } => assert_eq!(key, expected_key),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn corrupt_byte_ends_replay_at_that_record() {
        let path = tmp("corrupt.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..5u8 {
                wal.append(&WalRecord::Put {
                    key: vec![i],
                    value: vec![i; 16],
                })
                .unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a byte inside the third record's body
        let frame = bytes.len() / 5;
        bytes[2 * frame + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset.wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn fresh_create_then_torn_tail_then_recreate_reopens_cleanly() {
        // Exercises the creation/truncation durability path end to end:
        // every transition a crash could interrupt (fresh create, torn
        // append, checkpoint reset, re-create) must leave a log the next
        // open can replay.
        let path = tmp("fresh_create.wal");

        // 1. Fresh create (directory fsync path), no records yet.
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
        }
        assert!(path.exists(), "create must leave a durable file");

        // 2. Append, then tear the tail mid-record.
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"survives".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
            wal.append(&WalRecord::Put {
                key: b"torn".to_vec(),
                value: vec![0xAB; 64],
            })
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            assert_eq!(records.len(), 1);
            assert!(matches!(&records[0], WalRecord::Put { key, .. } if key == b"survives"));
            // 3. Checkpoint-style reset (truncation durability path).
            wal.reset().unwrap();
        }

        // 4. Delete and re-create at the same path (the checkpoint-rename
        //    shape): the fresh log must open and serve appends again.
        std::fs::remove_file(&path).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
            wal.append(&WalRecord::Checkpoint).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), vec![WalRecord::Checkpoint]);
    }

    #[test]
    fn appending_after_torn_replay_continues_cleanly() {
        let path = tmp("continue.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
        }
        // torn garbage at the end
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[1, 2, 3]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 2);
    }
}

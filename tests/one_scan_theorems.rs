//! Theorems 1 and 2 (§VI): the stack-refine and partition algorithms
//! complete within ONE scan of the involved keyword inverted lists. The
//! instrumented cursors count every sequential advance; the budget is the
//! total length of the `KS` lists.

use std::sync::Arc;
use xrefine_repro::datagen::{
    generate_dblp, generate_workload, DblpConfig, PerturbKind, WorkloadConfig,
};
use xrefine_repro::invindex::Index;
use xrefine_repro::prelude::*;
use xrefine_repro::xrefine::{
    partition_refine, sle_refine, stack_refine, PartitionOptions, RefineSession, SleOptions,
};

fn setup() -> (
    Arc<xrefine_repro::xmldom::Document>,
    Index,
    Vec<Vec<String>>,
) {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 60,
        ..Default::default()
    }));
    let index = Index::build(Arc::clone(&doc));
    let queries: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 3,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    (doc, index, queries)
}

fn session<'a>(engine: &XRefineEngine, index: &'a Index, keywords: &[String]) -> RefineSession<'a> {
    let q = Query::from_keywords(keywords.iter().cloned());
    let rules = engine.rules_for(&q);
    RefineSession::new(index, q, rules).expect("resident backend is infallible")
}

#[test]
fn theorem1_stack_refine_is_one_scan() {
    let (doc, index, queries) = setup();
    let engine = XRefineEngine::from_document(doc, EngineConfig::default());
    for keywords in &queries {
        let s = session(&engine, &index, keywords);
        let budget = s.total_list_len() as u64;
        let out = stack_refine(&s);
        assert!(
            out.advances <= budget,
            "{keywords:?}: {} advances > budget {budget}",
            out.advances
        );
        assert_eq!(out.random_accesses, 0, "{keywords:?}");
    }
}

#[test]
fn theorem2_partition_is_one_scan() {
    let (doc, index, queries) = setup();
    let engine = XRefineEngine::from_document(doc, EngineConfig::default());
    for keywords in &queries {
        let s = session(&engine, &index, keywords);
        let budget = s.total_list_len() as u64;
        let out = partition_refine(
            &s,
            &PartitionOptions {
                k: 3,
                ..Default::default()
            },
        );
        assert!(
            out.advances <= budget,
            "{keywords:?}: {} advances > budget {budget}",
            out.advances
        );
        assert_eq!(out.random_accesses, 0, "{keywords:?}");
    }
}

#[test]
fn sle_probes_instead_of_merging() {
    // SLE's distinguishing access pattern: it walks chosen anchor lists
    // sequentially and reaches the other lists by *random-access probes*
    // (stack-refine and partition perform zero random accesses).
    let (doc, index, queries) = setup();
    let engine = XRefineEngine::from_document(doc, EngineConfig::default());
    let mut probed = 0u64;
    for keywords in &queries {
        let s = session(&engine, &index, keywords);
        let out = sle_refine(
            &s,
            &SleOptions {
                k: 3,
                ..Default::default()
            },
        );
        probed += out.random_accesses;
        // step 1 never walks more postings than one scan of the lists;
        // only step 2's SLCA rescans can exceed the budget, and they are
        // bounded by (#candidates) x budget.
        let budget = s.total_list_len() as u64;
        let cap = budget * (2 * 3 + 2) + budget;
        assert!(
            out.advances <= cap,
            "{keywords:?}: {} > {cap}",
            out.advances
        );
    }
    assert!(probed > 0, "SLE never used a random access");
}

#[test]
fn all_three_algorithms_agree_on_optimal_dissimilarity() {
    let (doc, index, queries) = setup();
    let engine = XRefineEngine::from_document(doc, EngineConfig::default());
    let mut agreements = 0usize;
    let mut total = 0usize;
    for keywords in queries.iter().take(12) {
        let a = stack_refine(&session(&engine, &index, keywords));
        let b = partition_refine(
            &session(&engine, &index, keywords),
            &PartitionOptions {
                k: 2,
                ..Default::default()
            },
        );
        let c = sle_refine(
            &session(&engine, &index, keywords),
            &SleOptions {
                k: 2,
                ..Default::default()
            },
        );
        let ds = |o: &RefineOutcome| {
            o.refinements
                .iter()
                .map(|r| r.candidate.dissimilarity)
                .fold(f64::INFINITY, f64::min)
        };
        // stack-refine returns the exact optimum (it evaluates every
        // meaningful node); partition/SLE work from approximate Top-2K
        // candidate lists (§VI-B), so they can only be equal or worse —
        // never better.
        let (da, db, dc) = (ds(&a), ds(&b), ds(&c));
        assert!(
            da <= db,
            "partition beat stack on {keywords:?}: {da} vs {db}"
        );
        assert!(da <= dc, "sle beat stack on {keywords:?}: {da} vs {dc}");
        if da == db && db == dc {
            agreements += 1;
        }
        total += 1;
    }
    // The approximation must still find the true optimum on the vast
    // majority of queries.
    assert!(
        agreements * 10 >= total * 8,
        "only {agreements}/{total} queries agreed on the optimal dissimilarity"
    );
}

#[test]
fn needs_refinement_matches_perturbation_ground_truth() {
    // Valid queries should mostly pass untouched; perturbed ones whose
    // broken keyword vanished from the vocabulary must need refinement.
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 60,
        ..Default::default()
    }));
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 5,
            ..Default::default()
        },
    );
    let engine = XRefineEngine::from_document(doc, EngineConfig::default());
    for wq in &workload {
        let out = engine
            .answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
            .expect("query answered");
        if matches!(wq.kind, PerturbKind::Typo | PerturbKind::Synonym) {
            assert!(
                !out.original_ok,
                "query {:?} with kind {:?} should need refinement",
                wq.keywords, wq.kind
            );
        }
    }
}

// xlint-fixture: path=crates/kvstore/src/wal.rs
// Pragma behaviour: a justified pragma suppresses the next line, a bare
// pragma is itself a finding and suppresses nothing, an unknown rule
// name is a finding, and a pragma for the wrong rule leaves the real
// finding live.

fn suppressed(buf: &[u8], i: usize) -> u8 {
    // xlint::allow(no-panic-paths): index proven in bounds by the caller's length check
    buf[i]
}

fn bare_pragma(buf: &[u8], i: usize) -> u8 {
    // xlint::allow(no-panic-paths)
    buf[i]
}

fn unknown_rule(buf: &[u8]) {
    // xlint::allow(no-such-rule): misspelled rule names must not silently suppress
    buf.first().unwrap();
}

fn wrong_rule(buf: &[u8], i: usize) -> u8 {
    // xlint::allow(lock-order): suppressing an unrelated rule leaves the finding live
    buf[i]
}

fn same_line(buf: &[u8], i: usize) -> u8 {
    buf[i] // xlint::allow(no-panic-paths): bounds established by the binary-search above
}

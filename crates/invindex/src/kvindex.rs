//! The kvstore-backed [`IndexReader`] backend.
//!
//! [`KvBackedIndex`] opens a persisted index (see [`crate::persist`])
//! and serves queries without rehydrating the posting lists: vocabulary
//! and statistics load eagerly (they are small and every query touches
//! them), lists materialize lazily on first touch and live in a sharded
//! LRU cache with a configurable byte budget. Cold start is therefore
//! `O(vocabulary + stats)` instead of `O(index size)`, and steady-state
//! memory is bounded by the budget plus whatever outstanding
//! [`ListHandle`]s still pin.
//!
//! Concurrency: the reader is `Send + Sync` and designed to be shared
//! across serving threads behind one `Arc`. A cache hit locks exactly one
//! cache shard (see [`crate::cache`]) and never touches the store; a miss
//! reads the reader's pinned [`StoreGen`] snapshot directly — the
//! snapshot is immutable, so misses take **no lock at all** and decoding
//! happens outside every lock. Writers never block readers: a committing
//! [`crate::maint::MaintIndex`] publishes a *new* `StoreGen` (epoch
//! handoff) while existing readers keep serving the generation they
//! pinned at open.
//!
//! Cache policy lives in [`crate::cache`]: cost of an entry is its
//! *stored* (encoded) size; eviction never invalidates handles already
//! given out (entries are `Arc`-shared); a list larger than its shard's
//! budget is returned uncached and simply re-decoded on its next touch —
//! degraded speed, never degraded answers. Entries are stamped with the
//! generation that decoded them, so readers of different epochs can
//! share one cache without ever serving a stale list.

use crate::cache::ShardedListCache;
pub use crate::cache::{CacheStats, DEFAULT_CACHE_SHARDS};
use crate::cooccur::CoOccurrence;
use crate::persist;
use crate::reader::{IndexReader, ListHandle};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{KvError, KvStore, Result};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;
use xmldom::{Document, NodeTypeId};

/// Default list-cache budget: 64 MiB of encoded list bytes.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// An immutable, generation-tagged snapshot of a persisted index store:
/// a shared base store plus a frozen overlay of not-yet-compacted
/// updates, merged overlay-over-base on every read. This is what a
/// reader pins at open — a committing writer builds a *new* `StoreGen`
/// and never mutates a published one, so readers are never blocked.
///
/// The mutating half of [`KvStore`] is refused: a snapshot is read-only
/// by construction.
pub struct StoreGen {
    gen: u64,
    base: Arc<dyn KvStore>,
    /// Frozen copy of the writer's WAL overlay at publish time; `None`
    /// marks a deletion shadowing the base.
    overlay: Arc<BTreeMap<Vec<u8>, Option<Vec<u8>>>>,
    len: u64,
}

impl StoreGen {
    /// Wraps a store that will never be written again (the static
    /// serving path) as generation 0 with an empty overlay.
    pub fn read_only(store: Box<dyn KvStore>) -> Self {
        let len = store.len();
        StoreGen {
            gen: 0,
            base: Arc::from(store),
            overlay: Arc::new(BTreeMap::new()),
            len,
        }
    }

    /// A snapshot of `base` shadowed by `overlay`, published as
    /// generation `gen`. Computes the merged live-entry count (an
    /// overlay put over a missing base key adds one, a delete over a
    /// present key removes one).
    pub fn new(
        gen: u64,
        base: Arc<dyn KvStore>,
        overlay: Arc<BTreeMap<Vec<u8>, Option<Vec<u8>>>>,
    ) -> Result<Self> {
        let mut len = base.len();
        for (key, value) in overlay.iter() {
            let in_base = base.contains(key)?;
            match (in_base, value.is_some()) {
                (false, true) => len += 1,
                (true, false) => len = len.saturating_sub(1),
                _ => {}
            }
        }
        Ok(StoreGen {
            gen,
            base,
            overlay,
            len,
        })
    }

    /// The generation this snapshot was published as.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// The shared base store under the overlay.
    pub fn base(&self) -> &Arc<dyn KvStore> {
        &self.base
    }

    /// Number of frozen overlay entries (puts and deletes).
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }
}

impl KvStore for StoreGen {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.overlay.get(key) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None),
            None => self.base.get(key),
        }
    }

    fn put(&mut self, _key: &[u8], _value: &[u8]) -> Result<()> {
        Err(KvError::corrupt(
            "put on a read-only snapshot: mutate through MaintIndex, not a pinned StoreGen",
        ))
    }

    fn delete(&mut self, _key: &[u8]) -> Result<bool> {
        Err(KvError::corrupt(
            "delete on a read-only snapshot: mutate through MaintIndex, not a pinned StoreGen",
        ))
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        match self.overlay.get(key) {
            Some(v) => Ok(v.is_some()),
            None => self.base.contains(key),
        }
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (k, v) in self.base.scan_range(start, end)? {
            merged.insert(k, Some(v));
        }
        let upper = match end {
            Some(e) if e <= start => return Ok(Vec::new()),
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        for (k, v) in self.overlay.range((Bound::Included(start.to_vec()), upper)) {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let all = self.scan_range(prefix, None)?;
        Ok(all
            .into_iter()
            .take_while(|(k, _)| k.starts_with(prefix))
            .collect())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn sync(&mut self) -> Result<()> {
        Err(KvError::corrupt(
            "sync on a read-only snapshot: mutate through MaintIndex, not a pinned StoreGen",
        ))
    }
}

/// An [`IndexReader`] over a persisted index: posting lists decode
/// lazily from kvstore pages on first touch.
pub struct KvBackedIndex {
    doc: Arc<Document>,
    vocab: KeywordTable,
    stats: TypeStats,
    cooccur: CoOccurrence,
    version: u64,
    store: Arc<StoreGen>,
    cache: Arc<ShardedListCache>,
    /// The generation this reader pinned at open; list-cache lookups
    /// and inserts carry it so epochs never cross-contaminate.
    gen: u64,
    /// Keywords whose statistics entries failed validation at open:
    /// their lists still answer, their ranking inputs are incomplete.
    /// See [`crate::persist::load_stats_lenient`].
    damaged: HashMap<u32, String>,
}

impl KvBackedIndex {
    /// Opens a version-2 store (which embeds its source document) with
    /// the default cache budget.
    pub fn open(store: Box<dyn KvStore>) -> Result<Self> {
        let version = persist::read_version(store.as_ref())?;
        let blob = store.get(b"D/doc")?.ok_or_else(|| {
            KvError::corrupt(format!(
                "store (version {version}) has no embedded document; \
                 use open_with_document or re-persist at version 2+"
            ))
        })?;
        let doc = Arc::new(persist::decode_document(
            version,
            persist::decode_value(version, &blob, "D/doc")?,
        )?);
        Self::open_with_document(doc, store)
    }

    /// Opens a store of either format version against an externally
    /// supplied document (the version-1 path, where the document was
    /// never embedded).
    pub fn open_with_document(doc: Arc<Document>, store: Box<dyn KvStore>) -> Result<Self> {
        Self::open_snapshot_with_document(
            doc,
            Arc::new(StoreGen::read_only(store)),
            Arc::new(ShardedListCache::new(
                DEFAULT_CACHE_BUDGET,
                DEFAULT_CACHE_SHARDS,
            )),
        )
    }

    /// Opens a reader over an already-pinned [`StoreGen`] snapshot,
    /// sharing `cache` with readers of other generations. This is the
    /// epoch-handoff constructor [`crate::maint::MaintIndex`] uses to
    /// publish each commit.
    pub fn open_snapshot_with_document(
        doc: Arc<Document>,
        snap: Arc<StoreGen>,
        cache: Arc<ShardedListCache>,
    ) -> Result<Self> {
        let store: &dyn KvStore = &*snap;
        let version = persist::read_version(store)?;
        let vocab = persist::load_vocab(store, version)?;
        // Statistics load leniently: a damaged tf/df entry degrades one
        // keyword's ranking, it does not take the whole index down.
        let (stats, stat_damage) = persist::load_stats_lenient(store, version)?;
        let mut damaged: HashMap<u32, String> = HashMap::new();
        for d in stat_damage {
            let slot = damaged.entry(d.keyword.0).or_default();
            if !slot.is_empty() {
                slot.push_str("; ");
            }
            slot.push_str(&format!("{}: {}", d.entry, d.detail));
        }
        if stats.n_nodes_vec().len() != doc.node_types().len() {
            return Err(KvError::corrupt(
                "document does not match persisted index (type count)",
            ));
        }
        let gen = snap.gen();
        Ok(KvBackedIndex {
            doc,
            vocab,
            stats,
            cooccur: CoOccurrence::new(),
            version,
            store: snap,
            cache,
            gen,
            damaged,
        })
    }

    /// Sets the list-cache byte budget (encoded bytes), keeping the shard
    /// count. A budget of 0 disables caching entirely — every touch
    /// re-decodes. Allocates a private cache: builder-style callers are
    /// single-reader, not epoch-sharing.
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache = Arc::new(ShardedListCache::new(bytes, self.cache.shard_count()));
        self.cache.set_current_gen(self.gen);
        self
    }

    /// Sets the cache shard count, keeping the byte budget. One shard
    /// reproduces the monolithic LRU (global eviction order); more shards
    /// trade eviction precision for lower lock contention.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache = Arc::new(ShardedListCache::new(self.cache.budget(), shards));
        self.cache.set_current_gen(self.gen);
        self
    }

    /// The store generation this reader pinned at open.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Every key/value pair of the pinned snapshot, in key order. Pure
    /// reads against the immutable snapshot (no locks, no writes); the
    /// maintenance torture and differential suites use it to compare
    /// whole store states.
    pub fn store_dump(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.store.scan_range(b"", None)
    }

    /// Current cache counters, aggregated over all shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The persisted format version this reader is serving.
    pub fn format_version(&self) -> u64 {
        self.version
    }

    /// Keywords whose statistics were damaged on disk (sorted by id),
    /// with what is wrong with each. Empty for a healthy store.
    pub fn damaged_keywords(&self) -> Vec<(KeywordId, &str)> {
        let mut out: Vec<(KeywordId, &str)> = self
            .damaged
            .iter()
            .map(|(&k, detail)| (KeywordId(k), detail.as_str()))
            .collect();
        out.sort_by_key(|(k, _)| k.0);
        out
    }
}

impl IndexReader for KvBackedIndex {
    fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    fn vocabulary(&self) -> &KeywordTable {
        &self.vocab
    }

    fn stats(&self) -> &TypeStats {
        &self.stats
    }

    fn list_handle_by_id(&self, k: KeywordId) -> Result<ListHandle> {
        if k.0 as usize >= self.vocab.len() {
            return Ok(ListHandle::empty());
        }
        // Hit path: one shard lock, no store access. Lookups carry the
        // pinned generation so a newer epoch's entry never serves here.
        if let Some(list) = self.cache.get_at(k.0, self.gen) {
            obs::trace::event(
                "list_load",
                &[
                    ("keyword_id", &k.0),
                    ("len", &list.len()),
                    ("cache", &"hit"),
                ],
            );
            obs::trace::count("cache.hits", 1);
            return Ok(ListHandle::new(list));
        }
        obs::trace::count("cache.misses", 1);
        // Miss path: the pinned snapshot is immutable, so the read takes
        // no lock at all and decoding happens outside every lock.
        let value = self.store.get(&persist::list_key(k.0))?;
        let Some(value) = value else {
            return Err(KvError::corrupt(format!(
                "posting list {} missing from store",
                k.0
            )));
        };
        let list = Arc::new(persist::decode_list_value(self.version, &value)?);
        obs::trace::event(
            "list_load",
            &[
                ("keyword_id", &k.0),
                ("len", &list.len()),
                ("stored_bytes", &value.len()),
                ("cache", &"miss"),
            ],
        );
        self.cache
            .insert_at(k.0, Arc::clone(&list), value.len(), self.gen);
        Ok(ListHandle::new(list))
    }

    fn co_occur(&self, t: NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64 {
        self.cooccur.co_occur(self, t, ki, kj)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn keyword_damage(&self, k: KeywordId) -> Option<&str> {
        self.damaged.get(&k.0).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use crate::persist::persist;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    fn persisted() -> (Arc<Document>, Index, MemKv) {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        (doc, built, store)
    }

    fn handle_of(idx: &KvBackedIndex, kw: &str) -> ListHandle {
        idx.list_handle(kw).unwrap()
    }

    #[test]
    fn reader_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KvBackedIndex>();
    }

    #[test]
    fn opens_from_embedded_document_and_serves_lists() {
        let (doc, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        assert_eq!(idx.document().len(), doc.len());
        assert_eq!(idx.vocabulary().len(), built.vocabulary().len());
        for kw in ["xml", "john", "database", "hobby"] {
            let h = handle_of(&idx, kw);
            assert_eq!(
                h.postings(),
                built.list(kw).unwrap().as_slice(),
                "list mismatch for {kw}"
            );
        }
        // unknown keyword -> canonical empty handle, no store touch error
        assert!(handle_of(&idx, "publication").is_empty());
    }

    #[test]
    fn lists_load_lazily_and_hit_the_cache_on_retouch() {
        let (_, _, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        assert_eq!(idx.cache_stats().lists_decoded, 0, "open decodes nothing");
        let _ = handle_of(&idx, "xml");
        let s = idx.cache_stats();
        assert_eq!((s.misses, s.lists_decoded, s.hits), (1, 1, 0));
        let _ = handle_of(&idx, "xml");
        let s = idx.cache_stats();
        assert_eq!((s.misses, s.lists_decoded, s.hits), (1, 1, 1));
    }

    #[test]
    fn byte_budget_is_respected_under_eviction() {
        let (_, built, store) = persisted();
        // Budget sized to roughly two typical lists: inserting many
        // distinct lists must evict, and used bytes never exceed it.
        // One shard so the budget boundary is exercised globally.
        let budget =
            2 * persist::encode_list_value(persist::FORMAT_VERSION, built.list("xml").unwrap())
                .len()
                + 8;
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_shards(1)
            .with_cache_budget(budget);
        for (_, text) in built.vocabulary().iter() {
            let _ = handle_of(&idx, text);
            assert!(
                idx.cache_stats().cached_bytes <= budget,
                "cache exceeded budget"
            );
        }
        let s = idx.cache_stats();
        assert!(s.evictions > 0, "expected evictions under a small budget");
        // evicted lists still answer correctly on reload
        let h = handle_of(&idx, "xml");
        assert_eq!(h.postings(), built.list("xml").unwrap().as_slice());
    }

    #[test]
    fn sharded_budget_is_respected_under_eviction() {
        // Same boundary property with the default shard count: the
        // *global* budget still bounds the summed bytes, because the
        // per-shard budgets sum to it.
        let (_, built, store) = persisted();
        let budget =
            3 * persist::encode_list_value(persist::FORMAT_VERSION, built.list("xml").unwrap())
                .len();
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_budget(budget);
        for round in 0..2 {
            for (_, text) in built.vocabulary().iter() {
                let h = handle_of(&idx, text);
                assert_eq!(
                    h.postings(),
                    built.list(text).unwrap().as_slice(),
                    "round {round}: wrong answer for {text}"
                );
                assert!(idx.cache_stats().cached_bytes <= budget);
            }
        }
    }

    #[test]
    fn retouch_promotes_the_entry() {
        let (_, built, store) = persisted();
        let vocab: Vec<String> = built
            .vocabulary()
            .iter()
            .map(|(_, t)| t.to_string())
            .collect();
        // budget that fits ~3 small lists; one shard for a global LRU
        let cost = |kw: &str| {
            persist::encode_list_value(persist::FORMAT_VERSION, built.list(kw).unwrap()).len()
        };
        let budget = cost(&vocab[0]) + cost(&vocab[1]) + cost(&vocab[2]) + 2;
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_shards(1)
            .with_cache_budget(budget);

        let _ = handle_of(&idx, &vocab[0]);
        let _ = handle_of(&idx, &vocab[1]);
        // re-touch vocab[0]: it becomes MRU, so filling the cache evicts
        // vocab[1] first, and vocab[0] stays resident.
        let _ = handle_of(&idx, &vocab[0]);
        let hits_before = idx.cache_stats().hits;
        for w in vocab.iter().skip(2) {
            let _ = handle_of(&idx, w);
            if idx.cache_stats().evictions > 0 {
                break;
            }
        }
        assert!(idx.cache_stats().evictions > 0);
        let _ = handle_of(&idx, &vocab[0]);
        assert!(
            idx.cache_stats().hits > hits_before,
            "re-touched entry should have survived eviction"
        );
    }

    #[test]
    fn cache_smaller_than_one_list_still_answers_correctly() {
        let (_, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_budget(0);
        for round in 0..2 {
            for (_, text) in built.vocabulary().iter() {
                let h = idx.list_handle(text).unwrap();
                assert_eq!(
                    h.postings(),
                    built.list(text).unwrap().as_slice(),
                    "round {round}: wrong answer for {text}"
                );
            }
        }
        let s = idx.cache_stats();
        assert_eq!(s.cached_bytes, 0, "nothing fits a zero budget");
        assert_eq!(s.hits, 0);
        assert_eq!(
            s.lists_decoded,
            2 * built.vocabulary().len() as u64,
            "every touch re-decodes"
        );
    }

    #[test]
    fn corrupt_list_surfaces_as_error_on_first_touch() {
        let (_, _, mut store) = persisted();
        let key = persist::list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        match idx.list_handle_by_id(KeywordId(0)) {
            Err(e) if e.is_corrupt() => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn damaged_stats_degrade_one_keyword_not_the_open() {
        // v3 store: per-entry stat keys give per-keyword damage
        // isolation (v4 packs the tables, so damage there is fatal —
        // see `damaged_packed_stats_fail_the_open`).
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist::persist_versioned(&built, &mut store, persist::V3_FORMAT_VERSION).unwrap();
        let victim = built.vocabulary().get("xml").unwrap();
        let (key, value) = store
            .scan_prefix(b"S/T/")
            .unwrap()
            .into_iter()
            .find(|(k, _)| k[8..12] == victim.0.to_be_bytes())
            .expect("xml has tf entries");
        let mut bad = value.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &bad).unwrap();

        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        assert!(idx.keyword_damage(victim).is_some());
        assert_eq!(idx.damaged_keywords().len(), 1);
        // The damaged keyword's list still answers.
        assert_eq!(
            handle_of(&idx, "xml").postings(),
            built.list("xml").unwrap().as_slice()
        );
        // Healthy keywords report no damage.
        let john = built.vocabulary().get("john").unwrap();
        assert!(idx.keyword_damage(john).is_none());
    }

    #[test]
    fn damaged_packed_stats_fail_the_open() {
        // v4 packs the stat tables into one CRC-framed blob each, so a
        // flipped byte there has no per-keyword owner: the open fails
        // corrupt instead of degrading.
        let (_, _, mut store) = persisted();
        let mut bad = store.get(b"S/T").unwrap().expect("v4 packed tf table");
        *bad.last_mut().unwrap() ^= 0xFF;
        store.put(b"S/T", &bad).unwrap();
        match KvBackedIndex::open(Box::new(store)) {
            Err(e) => assert!(e.is_corrupt(), "unexpected error class: {e}"),
            Ok(_) => panic!("damaged packed stats opened"),
        }
    }

    #[test]
    fn version1_store_opens_with_external_document() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let v1_store = || {
            let mut store = MemKv::new();
            persist::persist_versioned(&built, &mut store, persist::LEGACY_FORMAT_VERSION).unwrap();
            store
        };
        // v1 has no embedded doc:
        assert!(KvBackedIndex::open(Box::new(v1_store())).is_err());
        let idx = KvBackedIndex::open_with_document(doc, Box::new(v1_store())).unwrap();
        assert_eq!(
            handle_of(&idx, "xml").postings(),
            built.list("xml").unwrap().as_slice()
        );
    }

    #[test]
    fn co_occurrence_matches_in_memory_backend() {
        let (_, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        let v = built.vocabulary();
        let xml = v.get("xml").unwrap();
        let john = v.get("john").unwrap();
        for t in built.document().node_types().iter() {
            assert_eq!(
                IndexReader::co_occur(&built, t, xml, john),
                IndexReader::co_occur(&idx, t, xml, john)
            );
        }
    }

    #[test]
    fn concurrent_readers_share_one_index() {
        let (_, built, store) = persisted();
        let idx = Arc::new(KvBackedIndex::open(Box::new(store)).unwrap());
        let vocab: Vec<String> = built
            .vocabulary()
            .iter()
            .map(|(_, t)| t.to_string())
            .collect();
        std::thread::scope(|s| {
            for t in 0..8 {
                let idx = Arc::clone(&idx);
                let vocab = &vocab;
                let built = &built;
                s.spawn(move || {
                    for round in 0..4 {
                        for kw in vocab {
                            let h = idx.list_handle(kw).unwrap();
                            assert_eq!(
                                h.postings(),
                                built.list(kw).unwrap().as_slice(),
                                "thread {t} round {round}: wrong answer for {kw}"
                            );
                        }
                    }
                });
            }
        });
        let s = idx.cache_stats();
        assert_eq!(s.hits + s.misses, 8 * 4 * vocab.len() as u64);
    }
}

//! Bibliography search over a synthetic DBLP corpus: the paper's primary
//! workload. Demonstrates the full pipeline — generate data, build the
//! index, inspect search-for inference, run Top-K refinement with each
//! algorithm, and verify the one-scan instrumentation.
//!
//! ```text
//! cargo run --release --example bibliography_search
//! ```

use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, DblpConfig};
use xrefine_repro::prelude::*;
use xrefine_repro::slca::{infer_search_for, SearchForConfig};

fn main() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 300,
        ..Default::default()
    }));
    println!("generated bibliography with {} elements", doc.len());

    let engine = XRefineEngine::from_document(
        Arc::clone(&doc),
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 3,
            ..Default::default()
        },
    );

    // Search-for inference (Formula 1): what entity does a query target?
    let index = engine.index();
    let q = Query::parse("xml keyword search");
    let ids: Vec<_> = q
        .keywords()
        .iter()
        .filter_map(|k| index.vocabulary().get(k))
        .collect();
    println!("\nsearch-for candidates for {q}:");
    for (t, conf) in infer_search_for(index, &ids, &SearchForConfig::default()) {
        println!(
            "  {}  (confidence {:.3})",
            doc.node_types().display(t, doc.symbols()),
            conf
        );
    }

    // A realistic broken query: a typo plus a vocabulary mismatch.
    let broken = "xml keyward serach";
    println!("\nanswering broken query {{{broken}}}:");
    let out = engine.answer(broken).unwrap();
    assert!(!out.original_ok);
    for (i, r) in out.refinements.iter().enumerate() {
        println!(
            "  RQ{} = {{{}}}  dSim={}  {} result(s)",
            i + 1,
            r.candidate.keywords.join(", "),
            r.candidate.dissimilarity,
            r.slcas.len()
        );
    }
    println!(
        "  scan budget: {} advances over {} total postings, {} random accesses",
        out.advances,
        index
            .vocabulary()
            .iter()
            .map(|(k, _)| index.list_handle_by_id(k).map(|h| h.len()).unwrap_or(0))
            .sum::<usize>(),
        out.random_accesses
    );

    // Compare the three algorithms on the same query.
    println!("\nalgorithm agreement on the optimal dissimilarity:");
    let mut engine = engine;
    for alg in [
        Algorithm::StackRefine,
        Algorithm::Partition,
        Algorithm::ShortListEager,
    ] {
        engine.config_mut().algorithm = alg;
        let out = engine.answer(broken).unwrap();
        let ds = out
            .best()
            .map(|r| r.candidate.dissimilarity)
            .unwrap_or(f64::NAN);
        println!("  {alg:?}: optimal dSim = {ds}");
    }
}

//! Ablation: document partitioning (Definition 6.1). Algorithm 2's two
//! wins over stack-refine are (1) skipping every computation whose SLCA
//! would be the document root and (2) invoking `getOptimalRQ` once per
//! partition instead of once per popped node. This bench measures both
//! algorithms on the same queries to quantify the gap.

use bench::{dblp, engine, f3, time_ms, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{Algorithm, Query};

fn main() {
    let doc = dblp(0.5);
    let workload: Vec<_> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 6,
            ..Default::default()
        },
    )
    .into_iter()
    .filter(|q| q.kind != PerturbKind::None)
    .collect();

    let mut e = engine(doc, Algorithm::Partition, 1);

    let mut t = Table::new(&["algorithm", "avg time (ms)"]);
    for (label, alg) in [
        ("Partition (Alg 2)", Algorithm::Partition),
        ("stack-refine (Alg 1)", Algorithm::StackRefine),
    ] {
        e.config_mut().algorithm = alg;
        let ms = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        t.row(vec![label.into(), f3(ms)]);
    }
    println!("== Ablation: partitioning vs per-node refinement ==\n");
    t.print();
}

//! The kvstore-backed [`IndexReader`] backend.
//!
//! [`KvBackedIndex`] opens a persisted index (see [`crate::persist`])
//! and serves queries without rehydrating the posting lists: vocabulary
//! and statistics load eagerly (they are small and every query touches
//! them), lists materialize lazily on first touch and live in an LRU
//! cache with a configurable byte budget. Cold start is therefore
//! `O(vocabulary + stats)` instead of `O(index size)`, and steady-state
//! memory is bounded by the budget plus whatever outstanding
//! [`ListHandle`]s still pin.
//!
//! Cache policy: cost of an entry is its *stored* (encoded) size — the
//! quantity the budget is protecting is decode work and resident bytes,
//! both proportional to it. Eviction never invalidates handles already
//! given out (entries are `Arc`-shared); a list larger than the whole
//! budget is returned uncached and simply re-decoded on its next touch —
//! degraded speed, never degraded answers.

use crate::cooccur::CoOccurrence;
use crate::persist;
use crate::postings::PostingList;
use crate::reader::{IndexReader, ListHandle};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{KvError, KvStore, Result};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use xmldom::{Document, NodeTypeId};

/// Default list-cache budget: 64 MiB of encoded list bytes.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// A snapshot of the list-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to touch the store.
    pub misses: u64,
    /// Lists decoded from stored pages (misses that found the key).
    pub lists_decoded: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Encoded bytes currently held by the cache.
    pub cached_bytes: usize,
}

struct CacheEntry {
    list: Arc<PostingList>,
    cost: usize,
    tick: u64,
}

/// LRU over decoded posting lists, keyed by keyword id, bounded by the
/// summed encoded size of the entries.
struct ListCache {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<u32, CacheEntry>,
    /// tick -> keyword id; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, u32>,
    hits: u64,
    misses: u64,
    lists_decoded: u64,
    evictions: u64,
}

impl ListCache {
    fn new(budget: usize) -> Self {
        ListCache {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            lists_decoded: 0,
            evictions: 0,
        }
    }

    /// Looks up `id`, promoting it to most-recently-used on a hit.
    fn get(&mut self, id: u32) -> Option<Arc<PostingList>> {
        match self.map.get_mut(&id) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.lru.insert(entry.tick, id);
                Some(Arc::clone(&entry.list))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly decoded list. Oversize lists (cost > budget)
    /// are not cached at all; otherwise LRU entries are evicted until
    /// the budget holds.
    fn insert(&mut self, id: u32, list: Arc<PostingList>, cost: usize) {
        self.lists_decoded += 1;
        if cost > self.budget {
            return;
        }
        if let Some(old) = self.map.remove(&id) {
            self.lru.remove(&old.tick);
            self.used -= old.cost;
        }
        while self.used + cost > self.budget {
            let (&tick, &victim) = self.lru.iter().next().expect("used > 0 implies entries");
            self.lru.remove(&tick);
            let evicted = self.map.remove(&victim).expect("lru and map agree");
            self.used -= evicted.cost;
            self.evictions += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, id);
        self.map.insert(
            id,
            CacheEntry {
                list,
                cost,
                tick: self.tick,
            },
        );
        self.used += cost;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            lists_decoded: self.lists_decoded,
            evictions: self.evictions,
            cached_bytes: self.used,
        }
    }
}

/// An [`IndexReader`] over a persisted index: posting lists decode
/// lazily from kvstore pages on first touch.
pub struct KvBackedIndex {
    doc: Arc<Document>,
    vocab: KeywordTable,
    stats: TypeStats,
    cooccur: CoOccurrence,
    version: u64,
    store: Mutex<Box<dyn KvStore>>,
    cache: Mutex<ListCache>,
}

impl KvBackedIndex {
    /// Opens a version-2 store (which embeds its source document) with
    /// the default cache budget.
    pub fn open(store: Box<dyn KvStore>) -> Result<Self> {
        let version = persist::read_version(store.as_ref())?;
        let blob = store.get(b"D/doc")?.ok_or_else(|| {
            KvError::Corrupt(format!(
                "store (version {version}) has no embedded document; \
                 use open_with_document or re-persist at version 2"
            ))
        })?;
        let doc = Arc::new(persist::decode_document(&blob)?);
        Self::open_with_document(doc, store)
    }

    /// Opens a store of either format version against an externally
    /// supplied document (the version-1 path, where the document was
    /// never embedded).
    pub fn open_with_document(doc: Arc<Document>, store: Box<dyn KvStore>) -> Result<Self> {
        let version = persist::read_version(store.as_ref())?;
        let vocab = persist::load_vocab(store.as_ref())?;
        let stats = persist::load_stats(store.as_ref())?;
        if stats.n_nodes_vec().len() != doc.node_types().len() {
            return Err(KvError::Corrupt(
                "document does not match persisted index (type count)".into(),
            ));
        }
        Ok(KvBackedIndex {
            doc,
            vocab,
            stats,
            cooccur: CoOccurrence::new(),
            version,
            store: Mutex::new(store),
            cache: Mutex::new(ListCache::new(DEFAULT_CACHE_BUDGET)),
        })
    }

    /// Sets the list-cache byte budget (encoded bytes). A budget of 0
    /// disables caching entirely — every touch re-decodes.
    pub fn with_cache_budget(self, bytes: usize) -> Self {
        let mut cache = self.cache.lock();
        *cache = ListCache::new(bytes);
        drop(cache);
        self
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// The persisted format version this reader is serving.
    pub fn format_version(&self) -> u64 {
        self.version
    }
}

impl IndexReader for KvBackedIndex {
    fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    fn vocabulary(&self) -> &KeywordTable {
        &self.vocab
    }

    fn stats(&self) -> &TypeStats {
        &self.stats
    }

    fn list_handle_by_id(&self, k: KeywordId) -> Result<ListHandle> {
        if k.0 as usize >= self.vocab.len() {
            return Ok(ListHandle::empty());
        }
        // Cache probe and store read are separate lock scopes: decoding
        // happens outside the cache lock, and the store lock is never
        // held while the cache lock is.
        if let Some(list) = self.cache.lock().get(k.0) {
            return Ok(ListHandle::new(list));
        }
        let value = {
            let store = self.store.lock();
            store.get(&persist::list_key(k.0))?
        };
        let Some(value) = value else {
            return Err(KvError::Corrupt(format!(
                "posting list {} missing from store",
                k.0
            )));
        };
        let list = Arc::new(persist::decode_list_value(self.version, &value)?);
        self.cache
            .lock()
            .insert(k.0, Arc::clone(&list), value.len());
        Ok(ListHandle::new(list))
    }

    fn co_occur(&self, t: NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64 {
        self.cooccur.co_occur(self, t, ki, kj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use crate::persist::persist;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    fn persisted() -> (Arc<Document>, Index, MemKv) {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        (doc, built, store)
    }

    fn handle_of(idx: &KvBackedIndex, kw: &str) -> ListHandle {
        idx.list_handle(kw).unwrap()
    }

    #[test]
    fn opens_from_embedded_document_and_serves_lists() {
        let (doc, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        assert_eq!(idx.document().len(), doc.len());
        assert_eq!(idx.vocabulary().len(), built.vocabulary().len());
        for kw in ["xml", "john", "database", "hobby"] {
            let h = handle_of(&idx, kw);
            assert_eq!(
                h.postings(),
                built.list(kw).unwrap().as_slice(),
                "list mismatch for {kw}"
            );
        }
        // unknown keyword -> canonical empty handle, no store touch error
        assert!(handle_of(&idx, "publication").is_empty());
    }

    #[test]
    fn lists_load_lazily_and_hit_the_cache_on_retouch() {
        let (_, _, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        assert_eq!(idx.cache_stats().lists_decoded, 0, "open decodes nothing");
        let _ = handle_of(&idx, "xml");
        let s = idx.cache_stats();
        assert_eq!((s.misses, s.lists_decoded, s.hits), (1, 1, 0));
        let _ = handle_of(&idx, "xml");
        let s = idx.cache_stats();
        assert_eq!((s.misses, s.lists_decoded, s.hits), (1, 1, 1));
    }

    #[test]
    fn byte_budget_is_respected_under_eviction() {
        let (_, built, store) = persisted();
        // Budget sized to roughly two typical lists: inserting many
        // distinct lists must evict, and used bytes never exceed it.
        let budget = 2 * persist::encode_list_value(2, built.list("xml").unwrap()).len() + 8;
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_budget(budget);
        for (_, text) in built.vocabulary().iter() {
            let _ = handle_of(&idx, text);
            assert!(
                idx.cache_stats().cached_bytes <= budget,
                "cache exceeded budget"
            );
        }
        let s = idx.cache_stats();
        assert!(s.evictions > 0, "expected evictions under a small budget");
        // evicted lists still answer correctly on reload
        let h = handle_of(&idx, "xml");
        assert_eq!(h.postings(), built.list("xml").unwrap().as_slice());
    }

    #[test]
    fn retouch_promotes_the_entry() {
        let (_, built, store) = persisted();
        let vocab: Vec<String> = built
            .vocabulary()
            .iter()
            .map(|(_, t)| t.to_string())
            .collect();
        // budget that fits ~3 small lists
        let cost = |kw: &str| persist::encode_list_value(2, built.list(kw).unwrap()).len();
        let budget = cost(&vocab[0]) + cost(&vocab[1]) + cost(&vocab[2]) + 2;
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_budget(budget);

        let _ = handle_of(&idx, &vocab[0]);
        let _ = handle_of(&idx, &vocab[1]);
        // re-touch vocab[0]: it becomes MRU, so filling the cache evicts
        // vocab[1] first, and vocab[0] stays resident.
        let _ = handle_of(&idx, &vocab[0]);
        let hits_before = idx.cache_stats().hits;
        for w in vocab.iter().skip(2) {
            let _ = handle_of(&idx, w);
            if idx.cache_stats().evictions > 0 {
                break;
            }
        }
        assert!(idx.cache_stats().evictions > 0);
        let _ = handle_of(&idx, &vocab[0]);
        assert!(
            idx.cache_stats().hits > hits_before,
            "re-touched entry should have survived eviction"
        );
    }

    #[test]
    fn cache_smaller_than_one_list_still_answers_correctly() {
        let (_, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store))
            .unwrap()
            .with_cache_budget(0);
        for round in 0..2 {
            for (_, text) in built.vocabulary().iter() {
                let h = idx.list_handle(text).unwrap();
                assert_eq!(
                    h.postings(),
                    built.list(text).unwrap().as_slice(),
                    "round {round}: wrong answer for {text}"
                );
            }
        }
        let s = idx.cache_stats();
        assert_eq!(s.cached_bytes, 0, "nothing fits a zero budget");
        assert_eq!(s.hits, 0);
        assert_eq!(
            s.lists_decoded,
            2 * built.vocabulary().len() as u64,
            "every touch re-decodes"
        );
    }

    #[test]
    fn corrupt_list_surfaces_as_error_on_first_touch() {
        let (_, _, mut store) = persisted();
        let key = persist::list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        match idx.list_handle_by_id(KeywordId(0)) {
            Err(KvError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn version1_store_opens_with_external_document() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let v1_store = || {
            let mut store = MemKv::new();
            persist::persist_versioned(&built, &mut store, persist::LEGACY_FORMAT_VERSION).unwrap();
            store
        };
        // v1 has no embedded doc:
        assert!(KvBackedIndex::open(Box::new(v1_store())).is_err());
        let idx = KvBackedIndex::open_with_document(doc, Box::new(v1_store())).unwrap();
        assert_eq!(
            handle_of(&idx, "xml").postings(),
            built.list("xml").unwrap().as_slice()
        );
    }

    #[test]
    fn co_occurrence_matches_in_memory_backend() {
        let (_, built, store) = persisted();
        let idx = KvBackedIndex::open(Box::new(store)).unwrap();
        let v = built.vocabulary();
        let xml = v.get("xml").unwrap();
        let john = v.get("john").unwrap();
        for t in built.document().node_types().iter() {
            assert_eq!(
                IndexReader::co_occur(&built, t, xml, john),
                IndexReader::co_occur(&idx, t, xml, john)
            );
        }
    }
}

//! Ingest pipeline benchmark: DOM-first vs streaming structural-index
//! build over a disk-resident DBLP corpus. Emits
//! `results/BENCH_ingest.json` with per-configuration throughput
//! (MB/s), peak-RSS proxy, and the 1–8 thread scaling of the streaming
//! path. Acceptance (ISSUE): streaming ≥ 4× the DOM single-thread
//! throughput with near-linear 1→4 thread scaling.
//!
//! Each configuration runs in a fresh child process (the binary
//! re-executes itself), so the peak-RSS reading (`VmHWM` from
//! `/proc/self/status`) reflects that configuration alone rather than
//! the high-water mark of whichever ran first.
//!
//! Knobs (environment): `INGEST_AUTHORS` scales the corpus (default
//! 150000, ≈50 MB rendered); `INGEST_REPS` timed repetitions per
//! configuration (default 3, best-of).

use datagen::{write_dblp_xml, DblpConfig};
use invindex::{build_streaming, Index};
use std::hint::black_box;
use std::io::BufWriter;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;
use xmldom::parse_document;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Peak resident set (kB) of this process, from `/proc/self/status`.
/// Returns 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Child entry: run one configuration, print `nanos peak_rss_kb nodes`
/// on stdout, exit. Invoked with `BENCH_INGEST_CHILD=<mode>:<threads>`
/// and the corpus path as the sole argument.
fn run_child(spec: &str, corpus: &str) {
    let (mode, threads) = spec
        .split_once(':')
        .expect("BENCH_INGEST_CHILD must be mode:threads");
    let threads: usize = threads.parse().expect("thread count");
    let reps = env_usize("INGEST_REPS", 3);
    let xml = std::fs::read_to_string(corpus).expect("read corpus");

    let mut best = u128::MAX;
    let mut nodes = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let n = match mode {
            "dom" => {
                let doc = Arc::new(parse_document(&xml).expect("parse corpus"));
                let index = Index::build(doc);
                black_box(&index);
                index.document().len()
            }
            "stream" => {
                let index = build_streaming(&xml, threads).expect("streaming build");
                black_box(&index);
                index.document().len()
            }
            other => panic!("unknown ingest mode {other}"),
        };
        best = best.min(start.elapsed().as_nanos());
        nodes = n;
    }
    println!("{best} {} {nodes}", peak_rss_kb());
}

struct Run {
    mode: &'static str,
    threads: usize,
    mbps: f64,
    secs: f64,
    peak_rss_mb: f64,
    nodes: usize,
}

/// Parent side: re-execute this binary for one configuration.
fn measure(mode: &'static str, threads: usize, corpus: &str, bytes: u64) -> Run {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .arg(corpus)
        .env("BENCH_INGEST_CHILD", format!("{mode}:{threads}"))
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "{mode}:{threads} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child output");
    let mut parts = text.split_whitespace();
    let nanos: u128 = parts.next().and_then(|p| p.parse().ok()).expect("nanos");
    let rss_kb: u64 = parts.next().and_then(|p| p.parse().ok()).expect("rss");
    let nodes: usize = parts.next().and_then(|p| p.parse().ok()).expect("nodes");
    let secs = nanos as f64 / 1e9;
    Run {
        mode,
        threads,
        mbps: bytes as f64 / 1e6 / secs,
        secs,
        peak_rss_mb: rss_kb as f64 / 1024.0,
        nodes,
    }
}

fn main() {
    let corpus_arg = std::env::args().nth(1);
    if let Ok(spec) = std::env::var("BENCH_INGEST_CHILD") {
        run_child(&spec, &corpus_arg.expect("child needs corpus path"));
        return;
    }

    let authors = env_usize("INGEST_AUTHORS", 150_000);
    let out_path = corpus_arg.unwrap_or_else(|| "results/BENCH_ingest.json".to_string());

    // Stream the corpus to disk once; every configuration reads the
    // same file.
    let dir = std::env::temp_dir().join(format!("bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let corpus = dir.join("corpus.xml");
    let cfg = DblpConfig {
        authors,
        ..Default::default()
    };
    let file = std::fs::File::create(&corpus).expect("create corpus");
    write_dblp_xml(&cfg, BufWriter::new(file)).expect("write corpus");
    let bytes = std::fs::metadata(&corpus).expect("corpus metadata").len();
    println!(
        "corpus: {authors} authors, {:.1} MB at {}",
        bytes as f64 / 1e6,
        corpus.display()
    );

    let corpus_str = corpus.to_str().expect("utf8 path");
    let configs: &[(&'static str, usize)] = &[
        ("dom", 1),
        ("stream", 1),
        ("stream", 2),
        ("stream", 4),
        ("stream", 8),
    ];
    let mut runs = Vec::new();
    for &(mode, threads) in configs {
        let r = measure(mode, threads, corpus_str, bytes);
        println!(
            "{:>6} x{}: {:7.1} MB/s  {:6.2} s  peak {:7.1} MB  ({} nodes)",
            r.mode, r.threads, r.mbps, r.secs, r.peak_rss_mb, r.nodes
        );
        runs.push(r);
    }
    let _ = std::fs::remove_file(&corpus);
    let _ = std::fs::remove_dir(&dir);

    let dom = runs.iter().find(|r| r.mode == "dom").expect("dom run");
    let s1 = runs
        .iter()
        .find(|r| r.mode == "stream" && r.threads == 1)
        .expect("stream x1");
    let s4 = runs
        .iter()
        .find(|r| r.mode == "stream" && r.threads == 4)
        .expect("stream x4");
    let speedup = s1.mbps / dom.mbps;
    let scaling_4t = s4.mbps / s1.mbps;
    println!("stream x1 vs dom: {speedup:.2}x; stream 1->4 threads: {scaling_4t:.2}x");

    let mut entries = String::new();
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"mb_per_s\": {:.2}, \
             \"seconds\": {:.3}, \"peak_rss_mb\": {:.1}}}",
            r.mode, r.threads, r.mbps, r.secs, r.peak_rss_mb
        ));
    }
    // Thread-scaling numbers are only meaningful relative to the cores
    // the host actually grants; record it so a 1-core container's flat
    // curve isn't mistaken for a pipeline property.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"corpus_authors\": {authors},\n  \"corpus_bytes\": {bytes},\n  \
         \"corpus_nodes\": {},\n  \"host_cpus\": {host_cpus},\n  \"runs\": [\n{entries}\n  ],\n  \
         \"stream_vs_dom_single_thread\": {speedup:.3},\n  \
         \"stream_scaling_1_to_4_threads\": {scaling_4t:.3}\n}}\n",
        dom.nodes
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_ingest.json");
    println!("wrote {out_path}");
}

//! Tables VIII, IX and X: the effectiveness study.
//!
//! * Table VIII — statistics of the query pool (50 queries with no
//!   meaningful result, various refinements, >= 4 RQ candidates);
//! * Table IX — average CG@1..4 under the full ranking model RS0 and its
//!   guideline ablations RS1–RS4;
//! * Table X — average CG@1..4 under (α, β) weight variants of
//!   Formula 10.
//!
//! Expected shape (paper §VIII-C): RS0 dominates every ablation at CG@1;
//! RS4 (no dissimilarity decay) is the weakest at CG@1; all variants
//! converge by CG@4. (1,1) beats (1,0) and (0,1); similarity matters more
//! than dependence for CG@1.

use bench::{dblp, f3, Table};
use datagen::{generate_workload, WorkloadConfig};
use evalkit::{evaluate_ranking, refinement_pool};
use std::sync::Arc;
use xrefine::RankingConfig;

fn main() {
    let doc = dblp(0.5);
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 9,
            ..Default::default()
        },
    );
    let pool: Vec<_> = refinement_pool(&workload).into_iter().take(50).collect();

    println!("== Table VIII: query pool statistics ==\n");
    let mut t8 = Table::new(&["property", "value"]);
    t8.row(vec!["queries".into(), format!("{}", pool.len())]);
    let avg_len: f64 =
        pool.iter().map(|q| q.keywords.len() as f64).sum::<f64>() / pool.len() as f64;
    t8.row(vec!["avg keywords".into(), f3(avg_len)]);
    let kinds: std::collections::HashSet<_> = pool.iter().map(|q| q.kind).collect();
    t8.row(vec!["refinement kinds".into(), format!("{}", kinds.len())]);
    t8.print();

    println!("\n== Table IX: CG@1..4 by ranking model (guideline ablations) ==\n");
    let mut t9 = Table::new(&["model", "CG@1", "CG@2", "CG@3", "CG@4"]);
    let mut rows = vec![("RS0".to_string(), RankingConfig::rs0())];
    for i in 1..=4 {
        rows.push((format!("RS{i}"), RankingConfig::without_guideline(i)));
    }
    for (label, config) in rows {
        let row = evaluate_ranking(Arc::clone(&doc), &pool, config, 4, &label);
        t9.row(vec![
            row.label,
            f3(row.cg[0]),
            f3(row.cg[1]),
            f3(row.cg[2]),
            f3(row.cg[3]),
        ]);
    }
    t9.print();

    println!("\n== Table X: CG@1..4 by (alpha, beta) ==\n");
    let mut t10 = Table::new(&["(alpha,beta)", "CG@1", "CG@2", "CG@3", "CG@4"]);
    for (a, b) in [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (2.0, 1.0), (1.0, 2.0)] {
        let row = evaluate_ranking(
            Arc::clone(&doc),
            &pool,
            RankingConfig::with_weights(a, b),
            4,
            &format!("({a},{b})"),
        );
        t10.row(vec![
            row.label,
            f3(row.cg[0]),
            f3(row.cg[1]),
            f3(row.cg[2]),
            f3(row.cg[3]),
        ]);
    }
    t10.print();
}

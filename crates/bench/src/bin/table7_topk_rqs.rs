//! Table VII: the Top-4 refined queries (with matching-result counts)
//! produced by the full ranking model (Formula 10, α = β = 1) for sample
//! queries covering every refinement operation.

use bench::{dblp, engine, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{Algorithm, Query};

fn main() {
    let doc = dblp(0.5);
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 2,
            ..Default::default()
        },
    );
    let e = engine(doc, Algorithm::Partition, 4);

    let mut t = Table::new(&["query", "RQ1", "RQ2", "RQ3", "RQ4"]);
    for wq in workload.iter().filter(|q| q.kind != PerturbKind::None) {
        let out = e
            .answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
            .expect("query answered");
        let mut cells = vec![wq.keywords.join(",")];
        for i in 0..4 {
            cells.push(match out.refinements.get(i) {
                Some(r) => format!("{},{}", r.candidate.keywords.join("."), r.slcas.len()),
                None => "-".into(),
            });
        }
        t.row(cells);
    }
    println!("== Table VII: Top-4 RQs with result counts (alpha=beta=1) ==\n");
    t.print();
    println!("\ncell format: keywords,result-count (as in the paper's Table VII)");
}

//! Compression test battery, part 1: the v4 codec under seeded random
//! and adversarial inputs.
//!
//! * 1000+ seeded random Dewey lists plus handcrafted adversarial
//!   shapes (deep, wide, single-element, shared-prefix pathological,
//!   header-escape depths) round-trip `encode_compressed` →
//!   [`CompressedList::parse`] → `decode_all` exactly;
//! * block-boundary seeks through [`PostingsCursor`] agree with the
//!   uncompressed `lower_bound` model at every probe;
//! * truncated and bit-flipped *framed* values (what a store actually
//!   holds) surface [`kvstore::KvError::Corrupt`] — never a panic,
//!   never wrong postings;
//! * arbitrary payload-level mutations (behind the frame) never panic
//!   and never violate the decoded-structure invariants.

use datagen::{random_dewey_corpus, DeweyCorpusConfig};
use invindex::persist::{decode_list_value, encode_list_value, FORMAT_VERSION};
use invindex::{CompressedList, Posting, PostingList, PostingsCursor, ScanStats, BLOCK_POSTINGS};
use std::sync::Arc;
use xmldom::{Dewey, NodeTypeId};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Deterministic node type for a label: varies within and across lists
/// so type-change and type-repeat header paths both get exercised.
fn type_of(d: &Dewey) -> NodeTypeId {
    let sum: u64 = d.components().iter().map(|&c| u64::from(c)).sum();
    NodeTypeId((sum % 5) as u32)
}

fn list_from(labels: Vec<Dewey>) -> PostingList {
    PostingList::from_sorted(
        labels
            .into_iter()
            .map(|d| {
                let t = type_of(&d);
                Posting::new(d, t)
            })
            .collect(),
    )
}

fn assert_roundtrip(list: &PostingList, label: &str) {
    let payload = list.encode_compressed();
    let parsed = CompressedList::parse(&payload).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
    assert_eq!(parsed.len(), list.len(), "{label}: length");
    let decoded = parsed
        .decode_all()
        .unwrap_or_else(|e| panic!("{label}: decode: {e}"));
    assert_eq!(&decoded, list, "{label}: contents");
    assert!(parsed.check_blocks().is_empty(), "{label}: block damage");
    // The framed path (what a v4 store holds) round-trips too.
    let framed = encode_list_value(FORMAT_VERSION, list);
    let back = decode_list_value(FORMAT_VERSION, &framed)
        .unwrap_or_else(|e| panic!("{label}: framed decode: {e}"));
    assert_eq!(&back, list, "{label}: framed contents");
}

#[test]
fn a_thousand_seeded_random_lists_roundtrip() {
    let configs = [
        DeweyCorpusConfig::default(),
        DeweyCorpusConfig {
            lists: 4,
            max_len: 400,
            max_depth: 9,
            fanout: 6,
            allow_empty: true,
        },
        DeweyCorpusConfig {
            lists: 4,
            max_len: 80,
            max_depth: 30,
            fanout: 2,
            allow_empty: false,
        },
    ];
    let mut lists = 0usize;
    for seed in 0..100u64 {
        for (ci, cfg) in configs.iter().enumerate() {
            for (li, labels) in random_dewey_corpus(seed, cfg).into_iter().enumerate() {
                assert_roundtrip(
                    &list_from(labels),
                    &format!("seed {seed} cfg {ci} list {li}"),
                );
                lists += 1;
            }
        }
    }
    assert!(lists >= 1000, "only {lists} lists generated");
}

#[test]
fn adversarial_shapes_roundtrip() {
    // single element, shallow and deep
    assert_roundtrip(
        &list_from(vec![Dewey::new(vec![0]).unwrap()]),
        "single shallow",
    );
    assert_roundtrip(
        &list_from(vec![Dewey::new(vec![7; 200]).unwrap()]),
        "single deep",
    );

    // deep chain: each label one deeper than its ancestor (trim 0, the
    // pure-descendant path), depth past the header escape threshold
    let mut chain = Vec::new();
    for depth in 1..=120usize {
        chain.push(Dewey::new(vec![0; depth]).unwrap());
    }
    assert_roundtrip(&list_from(chain), "descending chain");

    // wide flat fan-out: thousands of siblings, many full blocks
    let wide: Vec<Dewey> = (0..5000u32)
        .map(|i| Dewey::new(vec![0, i]).unwrap())
        .collect();
    assert_roundtrip(&list_from(wide), "wide fan-out");

    // shared-prefix pathological: a 90-deep shared prefix with tails
    // diverging at the last component — front-coding must not confuse
    // the long equal runs, and trim/rest escape paths (> 7) fire
    let prefix = vec![3u32; 90];
    let mut shared = Vec::new();
    for i in 0..300u32 {
        let mut c = prefix.clone();
        c.push(i);
        shared.push(Dewey::new(c).unwrap());
        if i % 3 == 0 {
            // occasionally dive 20 deeper, forcing rest > 7 and, on the
            // way back to the next sibling, trim > 7
            let mut deep = prefix.clone();
            deep.push(i);
            deep.extend_from_slice(&[1; 20]);
            shared.push(Dewey::new(deep).unwrap());
        }
    }
    shared.sort();
    shared.dedup();
    assert_roundtrip(&list_from(shared), "shared-prefix pathological");

    // component values at the u32 edge
    let edges = vec![
        Dewey::new(vec![0]).unwrap(),
        Dewey::new(vec![0, u32::MAX - 1]).unwrap(),
        Dewey::new(vec![0, u32::MAX - 1, u32::MAX]).unwrap(),
        Dewey::new(vec![0, u32::MAX]).unwrap(),
        Dewey::new(vec![u32::MAX]).unwrap(),
    ];
    assert_roundtrip(&list_from(edges), "u32-edge components");

    // exact block-boundary sizes
    for n in [
        BLOCK_POSTINGS - 1,
        BLOCK_POSTINGS,
        BLOCK_POSTINGS + 1,
        2 * BLOCK_POSTINGS,
        2 * BLOCK_POSTINGS + 1,
    ] {
        let labels: Vec<Dewey> = (0..n as u32)
            .map(|i| Dewey::new(vec![0, i]).unwrap())
            .collect();
        assert_roundtrip(&list_from(labels), &format!("boundary size {n}"));
    }
}

#[test]
fn block_boundary_seeks_agree_with_the_uncompressed_model() {
    let mut rng = XorShift(0x000C_0117_BEEF);
    for seed in 0..40u64 {
        let cfg = DeweyCorpusConfig {
            lists: 1,
            max_len: 700,
            max_depth: 7,
            fanout: 5,
            allow_empty: false,
        };
        let labels = random_dewey_corpus(seed, &cfg).remove(0);
        let list = list_from(labels);
        let payload = list.encode_compressed();
        let parsed = CompressedList::parse(&payload).unwrap();

        // Probe every posting label, every block's min and max, and a
        // spread of absent labels between and beyond them.
        let mut probes: Vec<Dewey> = list.iter().map(|p| p.dewey.clone()).collect();
        for meta in parsed.blocks() {
            probes.push(meta.min.clone());
            probes.push(meta.max.clone());
        }
        for _ in 0..50 {
            let depth = 1 + rng.below(6) as usize;
            let comps: Vec<u32> = (0..depth).map(|_| rng.below(9) as u32).collect();
            if let Some(d) = Dewey::new(comps) {
                probes.push(d);
            }
        }
        for probe in &probes {
            let stats = ScanStats::new();
            let mut cursor = PostingsCursor::new(&parsed, Arc::clone(&stats));
            cursor.seek(probe).unwrap();
            let expected = list.lower_bound(probe);
            assert_eq!(
                cursor.position(),
                expected,
                "seed {seed}: seek {probe} position"
            );
            assert_eq!(
                cursor.peek().unwrap().cloned(),
                list.get(expected).cloned(),
                "seed {seed}: seek {probe} posting"
            );
        }

        // Interleaved monotone seek/next walk stays consistent with a
        // model index into the uncompressed list.
        probes.sort();
        probes.dedup();
        let stats = ScanStats::new();
        let mut cursor = PostingsCursor::new(&parsed, Arc::clone(&stats));
        let mut model = 0usize;
        for probe in probes.iter().step_by(3) {
            cursor.seek(probe).unwrap();
            model = model.max(list.lower_bound(probe));
            assert_eq!(cursor.position(), model, "seed {seed}: walk seek {probe}");
            if rng.below(2) == 0 {
                let got = cursor.next().unwrap();
                assert_eq!(
                    got.as_ref(),
                    list.get(model),
                    "seed {seed}: walk next after {probe}"
                );
                if got.is_some() {
                    model += 1;
                }
            }
        }
    }
}

#[test]
fn truncated_framed_values_surface_corrupt() {
    let labels = random_dewey_corpus(7, &DeweyCorpusConfig::default()).remove(0);
    let list = list_from(labels);
    let framed = encode_list_value(FORMAT_VERSION, &list);
    for cut in 0..framed.len() {
        match decode_list_value(FORMAT_VERSION, &framed[..cut]) {
            Err(e) => assert!(e.is_corrupt(), "cut {cut}: non-corrupt error {e}"),
            Ok(_) => panic!("cut {cut}: truncated frame accepted"),
        }
    }
}

#[test]
fn bit_flipped_framed_values_surface_corrupt() {
    let cfg = DeweyCorpusConfig {
        lists: 1,
        max_len: 200,
        max_depth: 6,
        fanout: 5,
        allow_empty: false,
    };
    let labels = random_dewey_corpus(11, &cfg).remove(0);
    let list = list_from(labels);
    let framed = encode_list_value(FORMAT_VERSION, &list);
    for i in 0..framed.len() {
        for bit in 0..8 {
            let mut bad = framed.clone();
            bad[i] ^= 1 << bit;
            match decode_list_value(FORMAT_VERSION, &bad) {
                Err(e) => assert!(e.is_corrupt(), "flip {i}.{bit}: non-corrupt error {e}"),
                // A flip in the frame's *length varint* can reframe the
                // value so the checksum window still validates (e.g. a
                // redundant-zero continuation byte). The decoded postings
                // must then still be exactly right — never silently wrong.
                Ok(decoded) => assert_eq!(decoded, list, "flip {i}.{bit}: wrong postings"),
            }
        }
    }
}

#[test]
fn payload_mutations_never_panic_and_keep_structure() {
    let mut rng = XorShift(0xDEAD_50DA);
    let cfg = DeweyCorpusConfig {
        lists: 2,
        max_len: 300,
        max_depth: 8,
        fanout: 4,
        allow_empty: false,
    };
    for seed in 0..25u64 {
        for labels in random_dewey_corpus(seed, &cfg) {
            let list = list_from(labels);
            let payload = list.encode_compressed();
            for _ in 0..200 {
                let mut bad = payload.clone();
                match rng.below(3) {
                    0 => {
                        let cut = rng.below(bad.len() as u64 + 1) as usize;
                        bad.truncate(cut);
                    }
                    1 => {
                        let i = rng.below(bad.len() as u64) as usize;
                        bad[i] ^= (1 << rng.below(8)) as u8;
                    }
                    _ => {
                        for _ in 0..=rng.below(8) {
                            let i = rng.below(bad.len() as u64) as usize;
                            bad[i] = rng.below(256) as u8;
                        }
                    }
                }
                // Must never panic; anything accepted must hold the
                // structural invariants the cursor relies on.
                if let Ok(parsed) = CompressedList::parse(&bad) {
                    let damaged = parsed.check_blocks();
                    match parsed.decode_all() {
                        Ok(decoded) => {
                            assert!(damaged.is_empty(), "seed {seed}: damage but clean decode");
                            assert_eq!(decoded.len(), parsed.len());
                            let slice = decoded.as_slice();
                            for w in slice.windows(2) {
                                assert!(w[0].dewey < w[1].dewey, "seed {seed}: disorder");
                            }
                        }
                        Err(e) => {
                            assert!(e.is_corrupt(), "seed {seed}: non-corrupt error {e}");
                            assert!(
                                !damaged.is_empty(),
                                "seed {seed}: decode failed, scrub clean"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn seeks_skip_blocks_without_decoding_them() {
    let labels: Vec<Dewey> = (0..40 * BLOCK_POSTINGS as u32)
        .map(|i| Dewey::new(vec![0, i / 64, i % 64]).unwrap())
        .collect();
    let list = list_from(labels);
    let payload = list.encode_compressed();
    let parsed = CompressedList::parse(&payload).unwrap();
    let stats = ScanStats::new();
    let mut cursor = PostingsCursor::new(&parsed, Arc::clone(&stats));
    // touch the first block, then jump to the 30th
    cursor.next().unwrap();
    let target = &parsed.blocks()[30].min;
    cursor.seek(target).unwrap();
    assert_eq!(cursor.peek().unwrap().unwrap().dewey, *target);
    assert_eq!(cursor.blocks_decoded(), 2, "only the two touched blocks");
    assert_eq!(cursor.blocks_skipped(), 29, "blocks 1..30 skipped encoded");
}

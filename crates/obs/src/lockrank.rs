//! Runtime lock-rank checking, the dynamic half of the lock-order
//! discipline (the static half is xlint's `lock-order` rule; the
//! declared hierarchy lives in `crates/xlint/lockorder.toml`).
//!
//! Each instrumented acquisition site calls [`acquire`] with its lock's
//! rank *before* blocking on the lock, and holds the returned
//! [`RankGuard`] for the lifetime of the real guard. In debug builds a
//! thread-local stack of held ranks is maintained and an out-of-order
//! acquisition — taking a lock whose rank is not strictly greater than
//! every rank already held by this thread — aborts the test with a
//! `lock-rank violation` panic. The check catches *potential* deadlocks
//! on any single-threaded execution of the nesting, which is what makes
//! it cheap enough to leave on in every debug test run.
//!
//! In release builds `RankGuard` is a zero-sized type, [`acquire`]
//! compiles to nothing, and no thread-local exists at all.

#[cfg(debug_assertions)]
use std::cell::RefCell;
use std::marker::PhantomData;

/// Ranks for the workspace lock hierarchy. Keep in sync with
/// `crates/xlint/lockorder.toml` (the `lockorder_matches` test below
/// pins the values).
pub mod rank {
    pub const COOCCUR_COUNTS: u16 = 2;
    pub const COOCCUR_ANCESTORS: u16 = 4;
    pub const SERVE_QUEUE: u16 = 8;
    pub const MAINT_WRITER: u16 = 9;
    pub const MAINT_EPOCH: u16 = 10;
    pub const ENGINE_EPOCH: u16 = 11;
    pub const CACHE_SHARD: u16 = 20;
    pub const OBS_REGISTRY_COUNTERS: u16 = 50;
    pub const OBS_REGISTRY_GAUGES: u16 = 51;
    pub const OBS_REGISTRY_HISTOGRAMS: u16 = 52;
}

#[cfg(debug_assertions)]
thread_local! {
    static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Witness that a ranked lock is held by the current thread. `!Send` on
/// purpose: rank accounting is per-thread, so the guard must drop on
/// the thread that acquired it (same rule the real lock guards follow).
#[must_use = "the rank guard must live as long as the lock guard it shadows"]
pub struct RankGuard {
    #[cfg(debug_assertions)]
    rank: u16,
    _not_send: PhantomData<*const ()>,
}

/// Records that the current thread is about to acquire the lock named
/// `name` with rank `rank`. Call immediately before the real
/// acquisition; keep the guard alive exactly as long as the lock guard.
///
/// # Panics
///
/// In debug builds, if `rank` is not strictly greater than every rank
/// this thread already holds.
#[inline]
pub fn acquire(rank: u16, name: &'static str) -> RankGuard {
    #[cfg(debug_assertions)]
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&(top_rank, top_name)) = held.last() {
            assert!(
                rank > top_rank,
                "lock-rank violation: acquiring `{name}` (rank {rank}) while holding \
                 `{top_name}` (rank {top_rank}); see crates/xlint/lockorder.toml"
            );
        }
        held.push((rank, name));
    });
    #[cfg(not(debug_assertions))]
    let _ = (rank, name);
    RankGuard {
        #[cfg(debug_assertions)]
        rank,
        _not_send: PhantomData,
    }
}

impl Drop for RankGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards normally drop LIFO, but an explicit `drop(outer)`
            // may release out of order: remove the matching entry, not
            // blindly the top.
            if let Some(i) = held.iter().rposition(|&(r, _)| r == self.rank) {
                held.remove(i);
            }
        });
    }
}

/// The ranks currently held by this thread, innermost last. Debug-only
/// diagnostic; returns an empty vec in release builds.
pub fn held_ranks() -> Vec<u16> {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| held.borrow().iter().map(|&(r, _)| r).collect())
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(debug_assertions)]
    fn increasing_ranks_nest_cleanly() {
        let a = acquire(rank::MAINT_WRITER, "maint.writer");
        let b = acquire(rank::MAINT_EPOCH, "maint.epoch");
        let c = acquire(rank::CACHE_SHARD, "cache.shard");
        let d = acquire(rank::OBS_REGISTRY_COUNTERS, "obs.registry.counters");
        assert_eq!(held_ranks(), vec![9, 10, 20, 50]);
        drop(d);
        drop(c);
        drop(b);
        drop(a);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank violation")]
    fn inverted_acquisition_panics_in_debug() {
        let _shard = acquire(rank::CACHE_SHARD, "cache.shard");
        let _epoch = acquire(rank::MAINT_EPOCH, "maint.epoch");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn out_of_order_release_is_tolerated() {
        let a = acquire(rank::MAINT_EPOCH, "maint.epoch");
        let b = acquire(rank::CACHE_SHARD, "cache.shard");
        drop(a); // explicit early drop of the outer guard
        assert_eq!(held_ranks(), vec![20]);
        drop(b);
        // After the stack drains, low ranks are acquirable again.
        let c = acquire(rank::COOCCUR_COUNTS, "cooccur.counts");
        drop(c);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_guard_is_zero_sized_and_never_panics() {
        assert_eq!(std::mem::size_of::<RankGuard>(), 0);
        // Inverted order must be free and silent in release.
        let _shard = acquire(rank::CACHE_SHARD, "cache.shard");
        let _epoch = acquire(rank::MAINT_EPOCH, "maint.epoch");
    }

    #[test]
    fn lockorder_toml_matches_rank_constants() {
        // Compiled-in ranks must agree with the analyzer's declared
        // hierarchy. The TOML lives two crates over; parse it the same
        // trivial way xlint does.
        let toml = match std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../xlint/lockorder.toml"
        )) {
            Ok(t) => t,
            Err(_) => return, // packaged standalone; nothing to check against
        };
        for (name, rank) in [
            ("cooccur.counts", rank::COOCCUR_COUNTS),
            ("cooccur.ancestors", rank::COOCCUR_ANCESTORS),
            ("serve.queue", rank::SERVE_QUEUE),
            ("maint.writer", rank::MAINT_WRITER),
            ("maint.epoch", rank::MAINT_EPOCH),
            ("engine.epoch", rank::ENGINE_EPOCH),
            ("cache.shard", rank::CACHE_SHARD),
            ("obs.registry.counters", rank::OBS_REGISTRY_COUNTERS),
            ("obs.registry.gauges", rank::OBS_REGISTRY_GAUGES),
            ("obs.registry.histograms", rank::OBS_REGISTRY_HISTOGRAMS),
        ] {
            let needle = format!("\"{name}\" = {rank}");
            assert!(
                toml.contains(&needle),
                "lockorder.toml out of sync: expected `{needle}`"
            );
        }
    }
}

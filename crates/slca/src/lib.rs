//! `slca` — SLCA computation and meaningful-result semantics.
//!
//! Implements the substrate the paper's refinement algorithms stand on:
//!
//! * [`stack::slca_stack`] — the stack-based algorithm of XKSearch \[3\],
//!   extended by the paper's Algorithm 1;
//! * [`eager::slca_indexed_lookup_eager`] / [`eager::slca_scan_eager`] —
//!   the XKSearch eager algorithms (the paper's `stack-slca` /
//!   `scan-slca` baselines of Figure 4);
//! * [`multiway::slca_multiway`] — Multiway-SLCA \[8\], a pluggable
//!   alternative demonstrating the "orthogonal to any SLCA method" claim;
//! * [`searchfor`] — search-for node inference (Formula 1);
//! * [`meaningful`] — meaningful SLCA and the needs-refinement test
//!   (Definitions 3.3 / 3.4).

pub mod common;
pub mod eager;
pub mod elca;
pub mod meaningful;
pub mod multiway;
pub mod searchfor;
pub mod stack;

pub use common::{closest_match, minimal_candidates, slca_brute_force};
pub use eager::{slca_indexed_lookup_eager, slca_scan_eager};
pub use elca::{elca, elca_brute_force, slca_via_elca};
pub use meaningful::{needs_refinement, MeaningfulFilter};
pub use multiway::slca_multiway;
pub use searchfor::{confidence, confidence_with, infer_search_for, SearchForConfig};
pub use stack::slca_stack;

//! Per-query rule generation — the `getNewKeywords` consultation of
//! Algorithms 1–3.
//!
//! Given a query and the document vocabulary, derives every pertinent
//! refinement rule: merges of adjacent query terms that exist as one
//! vocabulary word, splits of query terms into vocabulary words, spelling
//! corrections within a bounded Damerau–Levenshtein distance, synonym
//! substitutions from the thesaurus, acronym expansions/contractions and
//! stemming variants. Every generated rule's RHS is guaranteed to consist
//! of vocabulary words — keywords that *do exist* in the XML data — which
//! is what lets the refinement algorithms promise matching results.

use crate::edit::within_distance;
use crate::rules::{RefineOp, Rule, RuleSet, RuleSource};
use crate::stemmer::porter_stem;
use crate::thesaurus::{AcronymTable, Thesaurus};
use std::collections::{HashMap, HashSet};

/// An indexed view of the document vocabulary.
#[derive(Debug, Default)]
pub struct VocabIndex {
    words: Vec<String>,
    set: HashSet<String>,
    by_stem: HashMap<String, Vec<u32>>,
}

impl VocabIndex {
    pub fn new<I: IntoIterator<Item = String>>(words: I) -> Self {
        let mut v = VocabIndex::default();
        for w in words {
            if v.set.contains(&w) {
                continue;
            }
            let id = v.words.len() as u32;
            v.by_stem.entry(porter_stem(&w)).or_default().push(id);
            v.set.insert(w.clone());
            v.words.push(w);
        }
        v
    }

    pub fn contains(&self, word: &str) -> bool {
        self.set.contains(word)
    }

    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(|s| s.as_str())
    }

    /// Vocabulary words sharing a Porter stem with `word` (excluding the
    /// word itself).
    pub fn stem_variants(&self, word: &str) -> Vec<&str> {
        self.by_stem
            .get(&porter_stem(word))
            .map(|ids| {
                ids.iter()
                    .map(|&i| self.words[i as usize].as_str())
                    .filter(|w| *w != word)
                    .collect()
            })
            .unwrap_or_default()
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Knobs of the rule generator.
#[derive(Debug, Clone)]
pub struct RuleGenConfig {
    /// Maximum Damerau–Levenshtein distance for spelling rules.
    pub max_edit_distance: usize,
    /// Minimum keyword length for spelling correction (short words are
    /// close to everything).
    pub min_spelling_len: usize,
    /// Cost of a one-term deletion (strictly above all rule scores).
    pub deletion_cost: f64,
    pub enable_merge: bool,
    pub enable_split: bool,
    pub enable_spelling: bool,
    pub enable_synonyms: bool,
    pub enable_acronyms: bool,
    pub enable_stemming: bool,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            max_edit_distance: 2,
            min_spelling_len: 4,
            deletion_cost: 2.0,
            enable_merge: true,
            enable_split: true,
            enable_spelling: true,
            enable_synonyms: true,
            enable_acronyms: true,
            enable_stemming: true,
        }
    }
}

/// Generates the pertinent rule set for `query` against `vocab`.
pub fn generate_rules(
    query: &[String],
    vocab: &VocabIndex,
    thesaurus: &Thesaurus,
    acronyms: &AcronymTable,
    config: &RuleGenConfig,
) -> RuleSet {
    let mut rs = RuleSet::new().with_deletion_cost(config.deletion_cost);

    if config.enable_merge {
        // Adjacent pairs and triples that exist as single vocabulary words.
        for w in query.windows(2) {
            let merged = format!("{}{}", w[0], w[1]);
            if vocab.contains(&merged) {
                rs.add(Rule::new(
                    &[&w[0], &w[1]],
                    &[&merged],
                    RefineOp::Merge,
                    RuleSource::Merging,
                    1.0,
                ));
            }
        }
        for w in query.windows(3) {
            let merged = format!("{}{}{}", w[0], w[1], w[2]);
            if vocab.contains(&merged) {
                rs.add(Rule::new(
                    &[&w[0], &w[1], &w[2]],
                    &[&merged],
                    RefineOp::Merge,
                    RuleSource::Merging,
                    2.0,
                ));
            }
        }
    }

    if config.enable_split {
        for k in query {
            let chars: Vec<char> = k.chars().collect();
            for cut in 1..chars.len() {
                let a: String = chars[..cut].iter().collect();
                let b: String = chars[cut..].iter().collect();
                if vocab.contains(&a) && vocab.contains(&b) {
                    rs.add(Rule::new(
                        &[k.as_str()],
                        &[&a, &b],
                        RefineOp::Split,
                        RuleSource::Splitting,
                        1.0,
                    ));
                }
            }
        }
    }

    if config.enable_spelling {
        for k in query {
            if vocab.contains(k) || k.chars().count() < config.min_spelling_len {
                continue;
            }
            for w in vocab.words() {
                if w.chars().count() < config.min_spelling_len {
                    continue;
                }
                if let Some(d) = within_distance(k, w, config.max_edit_distance) {
                    if d > 0 {
                        rs.add(Rule::new(
                            &[k.as_str()],
                            &[w],
                            RefineOp::Substitute,
                            RuleSource::Spelling,
                            d as f64,
                        ));
                    }
                }
            }
        }
    }

    if config.enable_synonyms {
        for k in query {
            for (syn, ds) in thesaurus.synonyms(k) {
                if vocab.contains(syn) {
                    rs.add(Rule::new(
                        &[k.as_str()],
                        &[syn],
                        RefineOp::Substitute,
                        RuleSource::Synonym,
                        *ds,
                    ));
                }
            }
        }
    }

    if config.enable_acronyms {
        for k in query {
            // acronym -> expansion (all expansion words must exist)
            for exp in acronyms.expansions(k) {
                if exp.iter().all(|w| vocab.contains(w)) {
                    let rhs: Vec<&str> = exp.iter().map(|s| s.as_str()).collect();
                    rs.add(Rule::new(
                        &[k.as_str()],
                        &rhs,
                        RefineOp::Substitute,
                        RuleSource::Acronym,
                        1.0,
                    ));
                }
            }
        }
        // expansion phrase in the query -> acronym
        for start in 0..query.len() {
            for end in (start + 2)..=query.len().min(start + 4) {
                let phrase = query[start..end].to_vec();
                if let Some(acr) = acronyms.acronym_of(&phrase) {
                    if vocab.contains(acr) {
                        let lhs: Vec<&str> = phrase.iter().map(|s| s.as_str()).collect();
                        rs.add(Rule::new(
                            &lhs,
                            &[acr],
                            RefineOp::Substitute,
                            RuleSource::Acronym,
                            1.0,
                        ));
                    }
                }
            }
        }
    }

    if config.enable_stemming {
        for k in query {
            if vocab.contains(k) {
                continue;
            }
            for variant in vocab.stem_variants(k) {
                rs.add(Rule::new(
                    &[k.as_str()],
                    &[variant],
                    RefineOp::Substitute,
                    RuleSource::Stemming,
                    1.0,
                ));
            }
        }
    }

    rs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> VocabIndex {
        VocabIndex::new(
            [
                "online",
                "database",
                "data",
                "base",
                "inproceedings",
                "proceedings",
                "article",
                "xml",
                "keyword",
                "search",
                "efficient",
                "skyline",
                "computation",
                "matching",
                "world",
                "wide",
                "web",
                "machine",
                "learning",
                "publications",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
    }

    fn q(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn gen(query: &[&str]) -> RuleSet {
        generate_rules(
            &q(query),
            &vocab(),
            &Thesaurus::bibliographic(),
            &AcronymTable::computer_science(),
            &RuleGenConfig::default(),
        )
    }

    fn has_rule(rs: &RuleSet, lhs: &[&str], rhs: &[&str]) -> bool {
        rs.iter().any(|(_, r)| {
            r.lhs.iter().map(|s| s.as_str()).collect::<Vec<_>>() == lhs
                && r.rhs.iter().map(|s| s.as_str()).collect::<Vec<_>>() == rhs
        })
    }

    #[test]
    fn merge_rules_from_adjacent_terms() {
        // Example 4's query {on, line, data, base}
        let rs = gen(&["on", "line", "data", "base"]);
        assert!(has_rule(&rs, &["on", "line"], &["online"]));
        assert!(has_rule(&rs, &["data", "base"], &["database"]));
        // non-adjacent terms never merge
        assert!(!has_rule(&rs, &["on", "base"], &["onbase"]));
    }

    #[test]
    fn split_rules_for_concatenations() {
        // QX2: "skyline" splits? No — "sky" and "line" are not in vocab.
        // "database" splits into data+base (both in vocab).
        let rs = gen(&["database"]);
        assert!(has_rule(&rs, &["database"], &["data", "base"]));
    }

    #[test]
    fn spelling_rules_within_bounded_distance() {
        // QX1: "eficient" -> "efficient" (1 edit)
        let rs = gen(&["eficient"]);
        assert!(has_rule(&rs, &["eficient"], &["efficient"]));
        let rule = rs
            .iter()
            .find(|(_, r)| r.source == RuleSource::Spelling && r.rhs[0] == "efficient")
            .unwrap()
            .1;
        assert_eq!(rule.dissimilarity, 1.0);
        // no spelling rules for words already in the vocabulary
        let rs2 = gen(&["efficient"]);
        assert!(rs2.iter().all(|(_, r)| r.source != RuleSource::Spelling));
    }

    #[test]
    fn synonym_rules_only_for_vocab_targets() {
        // Example 1: publication -> article/inproceedings/proceedings
        let rs = gen(&["publication"]);
        assert!(has_rule(&rs, &["publication"], &["article"]));
        assert!(has_rule(&rs, &["publication"], &["inproceedings"]));
        assert!(has_rule(&rs, &["publication"], &["proceedings"]));
        // "paper" is a synonym but not in this vocabulary
        assert!(!has_rule(&rs, &["publication"], &["paper"]));
    }

    #[test]
    fn acronym_rules_both_directions() {
        // Table II rule 6: WWW <-> world wide web
        let rs = gen(&["www"]);
        assert!(has_rule(&rs, &["www"], &["world", "wide", "web"]));
        // QX3: worldwide web -> www is a *merge+acronym*; the plain
        // phrase world wide web contracts only when "www" is in vocab —
        // it is not here, so no contraction rule.
        let rs2 = gen(&["world", "wide", "web"]);
        assert!(!has_rule(&rs2, &["world", "wide", "web"], &["www"]));
    }

    #[test]
    fn stemming_rules_for_morphological_variants() {
        // QX4: match -> matching; publication -> publications
        let rs = gen(&["match"]);
        assert!(has_rule(&rs, &["match"], &["matching"]));
        let rs2 = gen(&["publication"]);
        assert!(has_rule(&rs2, &["publication"], &["publications"]));
    }

    #[test]
    fn disabled_operations_generate_nothing() {
        let config = RuleGenConfig {
            enable_merge: false,
            enable_split: false,
            enable_spelling: false,
            enable_synonyms: false,
            enable_acronyms: false,
            enable_stemming: false,
            ..Default::default()
        };
        let rs = generate_rules(
            &q(&["on", "line", "publication", "eficient"]),
            &vocab(),
            &Thesaurus::bibliographic(),
            &AcronymTable::computer_science(),
            &config,
        );
        assert!(rs.is_empty());
    }

    #[test]
    fn every_rhs_keyword_exists_in_vocabulary() {
        let rs = gen(&[
            "on",
            "line",
            "data",
            "base",
            "publication",
            "eficient",
            "www",
        ]);
        let v = vocab();
        for (_, r) in rs.iter() {
            for w in &r.rhs {
                assert!(v.contains(w), "rule RHS {w} not in vocabulary");
            }
        }
    }
}

//! Robustness fuzzing: the engine must never panic, whatever the query
//! text, and its outputs must uphold their structural invariants.

use proptest::prelude::*;
use std::sync::Arc;
use xrefine_repro::prelude::*;
use xrefine_repro::xrefine::NarrowOptions;

fn engine(alg: Algorithm) -> XRefineEngine {
    XRefineEngine::from_document(
        Arc::new(xrefine_repro::xmldom::fixtures::figure1()),
        EngineConfig {
            algorithm: alg,
            k: 2,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn answer_never_panics_and_keeps_invariants(query in "\\PC{0,40}") {
        for alg in [Algorithm::StackRefine, Algorithm::Partition, Algorithm::ShortListEager] {
            let e = engine(alg);
            let out = e.answer(&query).expect("resident backend is infallible");
            // invariants
            if out.original_ok {
                prop_assert!(!out.refinements.is_empty());
                prop_assert_eq!(out.refinements[0].candidate.dissimilarity, 0.0);
            }
            for r in &out.refinements {
                prop_assert!(r.candidate.dissimilarity >= 0.0);
                prop_assert!(!r.candidate.keywords.is_empty());
                // every result renders (is a real node)
                for d in &r.slcas {
                    prop_assert!(e.render(d).is_some(), "dangling result {d}");
                }
                // results are document-ordered and distinct
                prop_assert!(r.slcas.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn narrow_never_panics(query in "[a-z ]{0,30}") {
        let e = engine(Algorithm::Partition);
        let _ = e.narrow(&query, &NarrowOptions::default());
    }

    #[test]
    fn keyword_heavy_queries_stay_bounded(
        words in proptest::collection::vec(
            prop_oneof![
                Just("xml"), Just("database"), Just("john"), Just("2003"),
                Just("on"), Just("line"), Just("data"), Just("base"),
                Just("fishing"), Just("title"), Just("zzz"),
            ],
            0..10
        )
    ) {
        let e = engine(Algorithm::Partition);
        let out = e
            .answer_query(Query::from_keywords(words.iter().map(|s| s.to_string())))
            .expect("resident backend is infallible");
        prop_assert!(out.refinements.len() <= 2 || out.original_ok);
    }
}

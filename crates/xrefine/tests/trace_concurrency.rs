//! Tracer integration under thread pressure: 8 threads hammer one shared
//! kv-backed engine with `answer_traced`, and every returned span tree
//! must be well-nested, carry the query's own phases, and show no
//! cross-thread contamination (the tracer is thread-local by design).

use invindex::{persist, Index, KvBackedIndex};
use kvstore::MemKv;
use std::sync::Arc;
use xmldom::fixtures::figure1;
use xrefine::{EngineConfig, XRefineEngine};

fn kv_engine() -> Arc<XRefineEngine> {
    let built = Index::build(Arc::new(figure1()));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let reader = KvBackedIndex::open(Box::new(store)).unwrap();
    Arc::new(XRefineEngine::from_reader(
        Arc::new(reader),
        EngineConfig::default(),
    ))
}

#[test]
fn traces_stay_well_nested_under_the_8_thread_hammer() {
    let engine = kv_engine();
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    let queries = [
        "database publication",
        "john fishing",
        "xml john 2003",
        "on line data base",
    ];
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let q = queries[(tid + round) % queries.len()];
                    let (result, trace) = engine.answer_traced(q);
                    result.unwrap_or_else(|e| panic!("thread {tid} query {q:?} failed: {e}"));
                    assert!(
                        trace.is_well_nested(),
                        "thread {tid} round {round}: trace not well nested:\n{}",
                        trace.render()
                    );
                    // The phases of *this* query, exactly once each.
                    let root = &trace.root;
                    assert_eq!(root.name, "query");
                    for phase in ["rules", "session"] {
                        assert_eq!(
                            root.children.iter().filter(|c| c.name == phase).count(),
                            1,
                            "thread {tid} round {round}: phase {phase} missing or duplicated"
                        );
                    }
                    // Exactly one algorithm span (default config: partition).
                    assert_eq!(
                        root.children
                            .iter()
                            .filter(|c| c.name == "partition")
                            .count(),
                        1
                    );
                    // The session span saw this query's keyword loads, not a
                    // neighbour's: every keyword event names a keyword of
                    // this query's KS (query words or rule-generated ones).
                    let session = trace.find("session").expect("session span");
                    assert!(
                        session.events.iter().any(|e| e.name == "keyword"),
                        "thread {tid}: no keyword events in session span"
                    );
                }
            });
        }
    });
}

#[test]
fn untraced_queries_pay_no_capture_and_produce_identical_answers() {
    let engine = kv_engine();
    let plain = engine.answer("database publication").unwrap();
    let (traced, trace) = engine.answer_traced("database publication");
    let traced = traced.unwrap();
    assert_eq!(plain.original_ok, traced.original_ok);
    assert_eq!(plain.refinements.len(), traced.refinements.len());
    for (a, b) in plain.refinements.iter().zip(traced.refinements.iter()) {
        assert_eq!(a.candidate.keywords, b.candidate.keywords);
        assert_eq!(a.slcas, b.slcas);
    }
    assert!(trace.is_well_nested());
    assert!(trace.root.duration > std::time::Duration::ZERO);
}

//! Synonym thesaurus — the WordNet substitute (see DESIGN.md).
//!
//! The paper draws synonym-substitution rules and their similarity scores
//! from WordNet \[18\]. Rules are consumed purely as `(S1 → S2, ds)` pairs,
//! so any thesaurus with sensible scores preserves behaviour; this module
//! ships a curated bibliographic-domain thesaurus (the domain of DBLP and
//! of every worked example in the paper) and supports user extension.

use std::collections::HashMap;

/// A thesaurus: groups of mutual synonyms with a per-pair dissimilarity.
#[derive(Debug, Default, Clone)]
pub struct Thesaurus {
    /// word -> (synonym, dissimilarity) pairs.
    entries: HashMap<String, Vec<(String, f64)>>,
}

impl Thesaurus {
    pub fn new() -> Self {
        Self::default()
    }

    /// The default bibliographic-domain thesaurus.
    pub fn bibliographic() -> Self {
        let mut t = Thesaurus::new();
        // publication kinds (Example 1 of the paper)
        t.add_group(
            &[
                "publication",
                "article",
                "inproceedings",
                "proceedings",
                "paper",
            ],
            1.0,
        );
        t.add_group(&["author", "writer"], 1.0);
        t.add_group(&["database", "db"], 1.0);
        t.add_group(&["journal", "periodical"], 1.0);
        t.add_group(&["conference", "symposium", "workshop"], 1.5);
        t.add_group(&["search", "retrieval", "lookup"], 1.5);
        t.add_group(&["efficient", "fast", "scalable"], 1.5);
        t.add_group(&["approach", "method", "technique", "algorithm"], 1.5);
        t.add_group(&["evaluation", "assessment"], 1.5);
        t.add_group(&["hobby", "interest", "pastime"], 1.0);
        t.add_group(&["year", "date"], 1.5);
        t.add_group(&["title", "name"], 1.5);
        t
    }

    /// Adds a group of mutual synonyms with uniform pairwise
    /// dissimilarity.
    pub fn add_group(&mut self, words: &[&str], dissimilarity: f64) {
        for &a in words {
            for &b in words {
                if a != b {
                    self.add_pair(a, b, dissimilarity);
                }
            }
        }
    }

    /// Adds one directed synonym pair.
    pub fn add_pair(&mut self, from: &str, to: &str, dissimilarity: f64) {
        let list = self.entries.entry(from.to_string()).or_default();
        if let Some(existing) = list.iter_mut().find(|(w, _)| w == to) {
            existing.1 = existing.1.min(dissimilarity);
        } else {
            list.push((to.to_string(), dissimilarity));
        }
    }

    /// Synonyms of `word` with their dissimilarity scores.
    pub fn synonyms(&self, word: &str) -> &[(String, f64)] {
        self.entries.get(word).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of head words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Acronym table: short form ↔ expansion word sequence.
#[derive(Debug, Default, Clone)]
pub struct AcronymTable {
    expansions: HashMap<String, Vec<Vec<String>>>,
    /// joined expansion ("world wide web") -> acronym
    reverse: HashMap<Vec<String>, String>,
}

impl AcronymTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// The default computer-science acronym table (the paper's `WWW ↔
    /// world wide web`, Table II rule 6, plus common DBLP-domain forms).
    pub fn computer_science() -> Self {
        let mut t = AcronymTable::new();
        t.add("www", &["world", "wide", "web"]);
        t.add("db", &["data", "base"]);
        t.add("db", &["database"]);
        t.add("ml", &["machine", "learning"]);
        t.add("ai", &["artificial", "intelligence"]);
        t.add("ir", &["information", "retrieval"]);
        t.add("nlp", &["natural", "language", "processing"]);
        t.add("dbms", &["database", "management", "system"]);
        t.add("olap", &["online", "analytical", "processing"]);
        t.add("p2p", &["peer", "to", "peer"]);
        t
    }

    /// Registers `acronym ↔ expansion`.
    pub fn add(&mut self, acronym: &str, expansion: &[&str]) {
        let exp: Vec<String> = expansion.iter().map(|s| s.to_string()).collect();
        self.reverse.insert(exp.clone(), acronym.to_string());
        self.expansions
            .entry(acronym.to_string())
            .or_default()
            .push(exp);
    }

    /// All expansions of an acronym.
    pub fn expansions(&self, acronym: &str) -> &[Vec<String>] {
        self.expansions
            .get(acronym)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The acronym for an exact expansion phrase, if registered.
    pub fn acronym_of(&self, phrase: &[String]) -> Option<&str> {
        self.reverse.get(phrase).map(|s| s.as_str())
    }

    /// Iterates `(acronym, expansion)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.expansions
            .iter()
            .flat_map(|(a, exps)| exps.iter().map(move |e| (a.as_str(), e.as_slice())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bibliographic_groups_are_symmetric() {
        let t = Thesaurus::bibliographic();
        let syns = t.synonyms("publication");
        assert!(syns.iter().any(|(w, _)| w == "article"));
        assert!(syns.iter().any(|(w, _)| w == "inproceedings"));
        let back = t.synonyms("article");
        assert!(back.iter().any(|(w, _)| w == "publication"));
        assert!(t.synonyms("zebra").is_empty());
    }

    #[test]
    fn add_pair_keeps_minimum_score() {
        let mut t = Thesaurus::new();
        t.add_pair("a", "b", 2.0);
        t.add_pair("a", "b", 1.0);
        t.add_pair("a", "b", 3.0);
        assert_eq!(t.synonyms("a"), &[("b".to_string(), 1.0)]);
    }

    #[test]
    fn acronyms_roundtrip() {
        let t = AcronymTable::computer_science();
        let exps = t.expansions("www");
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0], ["world", "wide", "web"]);
        let phrase: Vec<String> = ["world", "wide", "web"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(t.acronym_of(&phrase), Some("www"));
        assert!(t.expansions("zzz").is_empty());
        // multiple expansions of the same acronym
        assert_eq!(t.expansions("db").len(), 2);
    }
}

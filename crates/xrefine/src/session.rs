//! Per-query session state shared by the three refinement algorithms:
//! the key set `KS` (original keywords plus every rule-generated one), the
//! corresponding inverted lists, the meaningful-SLCA filter and the scan
//! instrumentation.

use crate::query::Query;
use crate::results::{DegradedKeyword, QueryFailure};
use invindex::{IndexReader, ListHandle, ScanStats};
use lexicon::RuleSet;
use slca::{MeaningfulFilter, SearchForConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a refinement algorithm needs for one query.
///
/// Construction acquires one [`ListHandle`] per `KS` keyword through the
/// [`IndexReader`], so a lazy backend (e.g. `KvBackedIndex`) decodes
/// exactly the lists this query can touch — nothing else.
pub struct RefineSession<'a> {
    pub index: &'a dyn IndexReader,
    pub query: Query,
    pub rules: RuleSet,
    /// `KS`: query keywords first (deduplicated), then rule-generated
    /// keywords (Algorithm 1 line 3).
    pub ks: Vec<String>,
    /// `ks[i]` -> i.
    pub ks_pos: HashMap<String, usize>,
    /// One inverted list per `KS` keyword (empty list when the keyword
    /// does not occur in the document).
    pub lists: Vec<ListHandle>,
    pub filter: MeaningfulFilter<'a>,
    pub scan_stats: Arc<ScanStats>,
    /// Keywords this session dropped or de-weighted because their
    /// on-disk state is damaged. The degradation policy at acquisition
    /// time: a corrupt posting list of an *original* query keyword fails
    /// construction (the query's meaning is gone); a corrupt list of a
    /// rule-*generated* keyword only removes refinements that would use
    /// it, so the keyword gets an empty list and a note here; damaged
    /// *statistics* only skew ranking, so the keyword stays and gets a
    /// note here. Non-corruption storage errors always fail.
    pub degraded: Vec<DegradedKeyword>,
}

impl<'a> RefineSession<'a> {
    pub fn new(
        index: &'a dyn IndexReader,
        query: Query,
        rules: RuleSet,
    ) -> Result<Self, QueryFailure> {
        Self::with_search_for(index, query, rules, &SearchForConfig::default())
    }

    pub fn with_search_for(
        index: &'a dyn IndexReader,
        query: Query,
        rules: RuleSet,
        search_for: &SearchForConfig,
    ) -> Result<Self, QueryFailure> {
        let mut ks: Vec<String> = Vec::new();
        let mut ks_pos: HashMap<String, usize> = HashMap::new();
        let push = |w: &str, ks: &mut Vec<String>, pos: &mut HashMap<String, usize>| {
            if !pos.contains_key(w) {
                pos.insert(w.to_string(), ks.len());
                ks.push(w.to_string());
            }
        };
        for k in query.keywords() {
            push(k, &mut ks, &mut ks_pos);
        }
        let original = ks.len();
        for k in rules.rhs_keywords() {
            push(&k, &mut ks, &mut ks_pos);
        }

        let mut degraded: Vec<DegradedKeyword> = Vec::new();
        let mut lists: Vec<ListHandle> = Vec::with_capacity(ks.len());
        for (i, k) in ks.iter().enumerate() {
            match index.list_handle(k) {
                Ok(h) => {
                    obs::trace::event(
                        "keyword",
                        &[
                            ("word", &k),
                            ("list_len", &h.len()),
                            ("origin", &if i < original { "query" } else { "rule" }),
                        ],
                    );
                    lists.push(h)
                }
                Err(e) if e.is_corrupt() && i >= original => {
                    degraded.push(DegradedKeyword {
                        keyword: k.clone(),
                        reason: format!("posting list unreadable, keyword dropped: {e}"),
                    });
                    lists.push(ListHandle::empty());
                }
                Err(e) => {
                    return Err(QueryFailure {
                        keyword: Some(k.clone()),
                        error: e,
                    })
                }
            }
        }
        // Damaged statistics never fail a query — they only skew its
        // ranking — but the caller deserves to know.
        for k in &ks {
            if let Some(id) = index.keyword_id(k) {
                if let Some(damage) = index.keyword_damage(id) {
                    degraded.push(DegradedKeyword {
                        keyword: k.clone(),
                        reason: format!("ranking statistics damaged: {damage}"),
                    });
                }
            }
        }

        let mut query_ids: Vec<invindex::KeywordId> = query
            .keywords()
            .iter()
            .filter_map(|k| index.vocabulary().get(k))
            .collect();
        if query_ids.is_empty() {
            // None of the original keywords occurs in the document (e.g. a
            // single misspelled term). Guideline 3's premise is that Q and
            // its refinements share the same search-for nodes, so infer
            // them from the rule-generated keywords instead.
            query_ids = rules
                .rhs_keywords()
                .iter()
                .filter_map(|k| index.vocabulary().get(k))
                .collect();
        }
        let filter = MeaningfulFilter::infer(index, &query_ids, search_for);
        obs::trace::attr("ks_width", ks.len());

        Ok(RefineSession {
            index,
            query,
            rules,
            ks,
            ks_pos,
            lists,
            filter,
            scan_stats: ScanStats::new(),
            degraded,
        })
    }

    /// `|KS|`.
    pub fn width(&self) -> usize {
        self.ks.len()
    }

    /// Index of a keyword within `KS`.
    pub fn pos(&self, keyword: &str) -> Option<usize> {
        self.ks_pos.get(keyword).copied()
    }

    /// Total length of all involved inverted lists (the one-scan budget).
    pub fn total_list_len(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invindex::Index;
    use std::sync::Arc as StdArc;
    use xmldom::fixtures::figure1;

    #[test]
    fn ks_is_query_then_generated_deduped() {
        let idx = Index::build(StdArc::new(figure1()));
        let q = Query::from_keywords(["on", "line", "data", "base", "on"]);
        let rules = RuleSet::table2();
        let s = RefineSession::new(&idx, q, rules).unwrap();
        // query keywords deduplicated, then RHS keywords (sorted by
        // rhs_keywords) minus duplicates
        assert_eq!(s.ks[..4], ["on", "line", "data", "base"]);
        assert!(s.ks.contains(&"online".to_string()));
        assert!(s.ks.contains(&"database".to_string()));
        assert_eq!(
            s.pos("online"),
            Some(s.ks.iter().position(|k| k == "online").unwrap())
        );
        // every keyword has a (possibly empty) list
        assert_eq!(s.lists.len(), s.ks.len());
        // "on" does not occur in figure 1
        assert!(s.lists[s.pos("on").unwrap()].is_empty());
        assert!(!s.lists[s.pos("database").unwrap()].is_empty());
    }
}

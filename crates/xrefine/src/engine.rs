//! `XRefineEngine` — the search-engine facade (the paper's "XRefine"
//! prototype): parse/index a document once — or open a persisted index —
//! then answer keyword queries with automatic refinement.
//!
//! The engine is storage-agnostic: it holds an `Arc<dyn IndexReader>`,
//! so the same query path serves a resident [`Index`] and a lazily
//! decoded [`KvBackedIndex`](invindex::KvBackedIndex) alike.

use crate::partition::{partition_refine, PartitionOptions, SlcaMethod};
use crate::query::Query;
use crate::ranking::RankingConfig;
use crate::results::{QueryFailure, RefineOutcome};
use crate::session::RefineSession;
use crate::sle::{sle_refine, SleOptions};
use crate::stack_refine::stack_refine;
use invindex::{Index, IndexReader, KvBackedIndex, ListHandle};
use lexicon::{generate_rules, AcronymTable, RuleGenConfig, RuleSet, Thesaurus, VocabIndex};
use slca::SearchForConfig;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldom::{parse_document, Dewey, Document, ParseError};

/// Which refinement algorithm answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1 (`stack-refine`): optimal RQ only.
    StackRefine,
    /// Algorithm 2 (`Partition`): Top-K.
    Partition,
    /// Algorithm 3 (`SLE`): Top-K.
    ShortListEager,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub algorithm: Algorithm,
    /// K of Top-K refinement.
    pub k: usize,
    pub ranking: RankingConfig,
    pub rulegen: RuleGenConfig,
    pub search_for: SearchForConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 3,
            ranking: RankingConfig::default(),
            rulegen: RuleGenConfig::default(),
            search_for: SearchForConfig::default(),
        }
    }
}

/// Wall-clock decomposition of one `answer` call, for serving drivers
/// and benchmarks. The three phases partition the whole call:
///
/// * `rules` — refinement-rule generation (`getNewKeywords`);
/// * `session` — session setup: keyword resolution and posting-list
///   acquisition (the only phase that touches storage);
/// * `algorithm` — the refinement algorithm itself (SLCA scans,
///   ranking, Top-K maintenance).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    pub rules: Duration,
    pub session: Duration,
    pub algorithm: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.rules + self.session + self.algorithm
    }

    /// Accumulates another call's timings (for per-thread totals).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.rules += other.rules;
        self.session += other.session;
        self.algorithm += other.algorithm;
    }
}

/// The XRefine prototype engine.
pub struct XRefineEngine {
    reader: Arc<dyn IndexReader>,
    vocab: VocabIndex,
    thesaurus: Thesaurus,
    acronyms: AcronymTable,
    config: EngineConfig,
}

impl XRefineEngine {
    /// Parses and indexes an XML document.
    pub fn from_xml(xml: &str, config: EngineConfig) -> Result<Self, ParseError> {
        Ok(Self::from_document(Arc::new(parse_document(xml)?), config))
    }

    /// Indexes an already-built document.
    pub fn from_document(doc: Arc<Document>, config: EngineConfig) -> Self {
        Self::from_index(Index::build(doc), config)
    }

    /// Indexes an already-built document using `threads` workers for the
    /// index build (identical output; see `invindex::parallel`).
    pub fn from_document_parallel(
        doc: Arc<Document>,
        config: EngineConfig,
        threads: usize,
    ) -> Self {
        Self::from_index(invindex::build_parallel(doc, threads), config)
    }

    /// Wraps an existing resident index.
    pub fn from_index(index: Index, config: EngineConfig) -> Self {
        Self::from_reader(Arc::new(index), config)
    }

    /// Wraps any index backend behind the [`IndexReader`] trait.
    pub fn from_reader(reader: Arc<dyn IndexReader>, config: EngineConfig) -> Self {
        let vocab = VocabIndex::new(reader.vocabulary().iter().map(|(_, w)| w.to_string()));
        XRefineEngine {
            reader,
            vocab,
            thesaurus: Thesaurus::bibliographic(),
            acronyms: AcronymTable::computer_science(),
            config,
        }
    }

    /// Opens a persisted index (written by `invindex::persist`) straight
    /// from its on-disk kv store: the document is replayed from the
    /// embedded blob and posting lists are decoded lazily, per query —
    /// no XML re-parse, no full index load. A store with a non-empty
    /// WAL sidecar (online maintenance committed but not yet compacted)
    /// is opened through the durable merged view, so readers see every
    /// committed update.
    pub fn from_store(path: &Path, config: EngineConfig) -> kvstore::Result<Self> {
        let wal = path.with_extension("wal");
        let has_overlay = std::fs::metadata(&wal)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
            || path.with_extension("db.new").exists();
        let store: Box<dyn kvstore::KvStore> = if has_overlay {
            Box::new(kvstore::DurableKv::open(path)?)
        } else {
            Box::new(kvstore::DiskKv::open(path)?)
        };
        let index = KvBackedIndex::open(store)?;
        Ok(Self::from_reader(Arc::new(index), config))
    }

    /// Swaps the thesaurus (e.g. for a non-bibliographic corpus).
    pub fn with_thesaurus(mut self, thesaurus: Thesaurus) -> Self {
        self.thesaurus = thesaurus;
        self
    }

    pub fn with_acronyms(mut self, acronyms: AcronymTable) -> Self {
        self.acronyms = acronyms;
        self
    }

    pub fn index(&self) -> &dyn IndexReader {
        self.reader.as_ref()
    }

    pub fn document(&self) -> &Arc<Document> {
        self.reader.document()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The pertinent rule set for a query (`getNewKeywords` consultation).
    pub fn rules_for(&self, query: &Query) -> RuleSet {
        generate_rules(
            query.keywords(),
            &self.vocab,
            &self.thesaurus,
            &self.acronyms,
            &self.config.rulegen,
        )
    }

    /// Answers a free-text query. Storage errors from a kv-backed index
    /// surface as `Err`; the resident backend is infallible.
    pub fn answer(&self, query_text: &str) -> kvstore::Result<RefineOutcome> {
        self.answer_query(Query::parse(query_text))
    }

    /// Answers a parsed query with the configured algorithm.
    pub fn answer_query(&self, query: Query) -> kvstore::Result<RefineOutcome> {
        self.answer_query_timed(query).map(|(outcome, _)| outcome)
    }

    /// Like [`XRefineEngine::answer`], but failures keep their keyword
    /// attribution (see [`QueryFailure`]) and successful outcomes carry
    /// their degradation notes — the serving path's entry point, where a
    /// corrupt posting list must fail *this query*, structured enough to
    /// report, while the engine keeps serving everything else.
    pub fn answer_detailed(&self, query_text: &str) -> Result<RefineOutcome, QueryFailure> {
        self.answer_query_detailed(Query::parse(query_text))
            .map(|(outcome, _)| outcome)
    }

    /// Like [`XRefineEngine::answer`], additionally reporting where the
    /// wall-clock time went (see [`PhaseTimings`]).
    pub fn answer_timed(&self, query_text: &str) -> kvstore::Result<(RefineOutcome, PhaseTimings)> {
        self.answer_query_timed(Query::parse(query_text))
    }

    /// Answers a parsed query, reporting per-phase timings.
    pub fn answer_query_timed(
        &self,
        query: Query,
    ) -> kvstore::Result<(RefineOutcome, PhaseTimings)> {
        self.answer_query_detailed(query).map_err(Into::into)
    }

    /// Answers a parsed query with per-phase timings, keyword-attributed
    /// failures and degradation notes. Each phase is also recorded as a
    /// trace span (when a capture is active) and a latency histogram in
    /// the global metrics registry.
    pub fn answer_query_detailed(
        &self,
        query: Query,
    ) -> Result<(RefineOutcome, PhaseTimings), QueryFailure> {
        obs::counter!("xrefine_queries_total").inc();
        let result = self.answer_phases(query);
        if result.is_err() {
            obs::counter!("xrefine_query_failures_total").inc();
        }
        result
    }

    fn answer_phases(&self, query: Query) -> Result<(RefineOutcome, PhaseTimings), QueryFailure> {
        // xlint::allow(no-wallclock-in-hot-paths): once per query — whole-query latency histogram, not per-node work
        let started = Instant::now();
        let mut timings = PhaseTimings::default();

        // xlint::allow(no-wallclock-in-hot-paths): once per query, brackets the rules phase
        let t0 = Instant::now();
        let rules = {
            let _span = obs::trace::span("rules");
            obs::trace::attr("query", query.keywords().join(" "));
            self.rules_for(&query)
        };
        timings.rules = t0.elapsed();
        obs::histogram!("xrefine_phase_rules_nanos").observe_duration(timings.rules);

        // xlint::allow(no-wallclock-in-hot-paths): once per query, brackets the session phase
        let t1 = Instant::now();
        let session = {
            let _span = obs::trace::span("session");
            obs::trace::attr("rules", rules.len());
            RefineSession::with_search_for(
                self.reader.as_ref(),
                query,
                rules,
                &self.config.search_for,
            )?
        };
        timings.session = t1.elapsed();
        obs::histogram!("xrefine_phase_session_nanos").observe_duration(timings.session);

        // xlint::allow(no-wallclock-in-hot-paths): once per query, brackets the algorithm phase
        let t2 = Instant::now();
        let outcome = {
            let _span = obs::trace::span(match self.config.algorithm {
                Algorithm::StackRefine => "stack-refine",
                Algorithm::Partition => "partition",
                Algorithm::ShortListEager => "sle",
            });
            match self.config.algorithm {
                Algorithm::StackRefine => stack_refine(&session),
                Algorithm::Partition => partition_refine(
                    &session,
                    &PartitionOptions {
                        k: self.config.k,
                        slca: slca::slca_scan_eager,
                        ranking: self.config.ranking.clone(),
                    },
                ),
                Algorithm::ShortListEager => sle_refine(
                    &session,
                    &SleOptions {
                        k: self.config.k,
                        slca: slca::slca_scan_eager,
                        ranking: self.config.ranking.clone(),
                        smart_choice: true,
                    },
                ),
            }
        };
        timings.algorithm = t2.elapsed();
        obs::histogram!("xrefine_phase_algorithm_nanos").observe_duration(timings.algorithm);
        obs::histogram!("xrefine_query_nanos").observe_duration(started.elapsed());

        obs::counter!("invindex_scan_advances_total").add(outcome.advances);
        obs::counter!("invindex_random_accesses_total").add(outcome.random_accesses);
        obs::trace::count("scan.advances", outcome.advances);
        obs::trace::count("scan.random_accesses", outcome.random_accesses);
        Ok((outcome, timings))
    }

    /// Answers a free-text query while capturing a per-query span tree
    /// (see [`obs::QueryTrace`]). The trace is returned alongside the
    /// outcome whether the query succeeded or failed — a failing query's
    /// trace shows how far it got.
    pub fn answer_traced(
        &self,
        query_text: &str,
    ) -> (Result<RefineOutcome, QueryFailure>, obs::QueryTrace) {
        let query = Query::parse(query_text);
        let (result, trace) = obs::trace::capture("query", || {
            self.answer_query_detailed(query)
                .map(|(outcome, _)| outcome)
        });
        (result, trace)
    }

    /// Explains how a refined query derives from `query_text`: the
    /// cheapest refinement sequence (Definition 3.6) reaching exactly
    /// `target`'s keyword set over the whole-document vocabulary.
    pub fn explain(
        &self,
        query_text: &str,
        target: &[String],
    ) -> Option<(f64, Vec<crate::dp::AppliedOp>)> {
        let query = Query::parse(query_text);
        let rules = self.rules_for(&query);
        let available = |w: &str| self.reader.contains_keyword(w);
        crate::dp::explain_rq(&query, &available, &rules, target)
    }

    /// Narrowing refinement for over-broad queries (the paper's §IX
    /// future work): `Ok(None)` when the query does not have "too many"
    /// meaningful results.
    pub fn narrow(
        &self,
        query_text: &str,
        options: &crate::narrow::NarrowOptions,
    ) -> kvstore::Result<Option<Vec<crate::narrow::Narrowing>>> {
        crate::narrow::narrow_refine(self.reader.as_ref(), &Query::parse(query_text), options)
    }

    /// Plain SLCA of the query with no refinement (the `stack-slca` /
    /// `scan-slca` baselines of Figure 4).
    pub fn baseline_slca(&self, query: &Query, method: SlcaMethod) -> kvstore::Result<Vec<Dewey>> {
        let slices: Vec<ListHandle> = query
            .keywords()
            .iter()
            .map(|k| self.reader.list_handle(k))
            .collect::<kvstore::Result<_>>()?;
        Ok(method(&slices))
    }

    /// Renders a result subtree back to XML (for display).
    pub fn render(&self, dewey: &Dewey) -> Option<String> {
        let doc = self.reader.document();
        let id = doc.node_by_dewey(dewey)?;
        Some(doc.subtree_to_xml(id))
    }
}

// The serving model is one engine behind an `Arc`, queried from many
// threads concurrently. If this assertion stops compiling, some engine
// component (reader backend, lexicon table, config) grew
// thread-unsafe state.
const _: () = {
    fn _assert_send_sync<T: Send + Sync>() {}
    fn _check() {
        _assert_send_sync::<XRefineEngine>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::fixtures::figure1;

    fn engine(algorithm: Algorithm) -> XRefineEngine {
        XRefineEngine::from_document(
            Arc::new(figure1()),
            EngineConfig {
                algorithm,
                k: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn from_xml_end_to_end() {
        let e = XRefineEngine::from_xml(
            "<bib><author><name>Ann</name><hobby>chess</hobby></author></bib>",
            EngineConfig::default(),
        )
        .unwrap();
        let out = e.answer("ann chess").unwrap();
        assert!(out.original_ok);
        assert!(!out.best().unwrap().slcas.is_empty());
    }

    #[test]
    fn all_algorithms_answer_example1() {
        // {database, publication}: needs synonym substitution.
        for alg in [
            Algorithm::StackRefine,
            Algorithm::Partition,
            Algorithm::ShortListEager,
        ] {
            let e = engine(alg);
            let out = e.answer("database publication").unwrap();
            assert!(!out.original_ok, "{alg:?}");
            let best = out
                .best()
                .unwrap_or_else(|| panic!("{alg:?} found nothing"));
            assert!(best.candidate.dissimilarity > 0.0);
            assert!(!best.slcas.is_empty());
            // some top candidate repairs the missing term at dSim 1 while
            // keeping "database" (e.g. publication -> publications)
            if alg != Algorithm::StackRefine {
                assert!(
                    out.refinements.iter().any(|r| {
                        r.candidate.dissimilarity == 1.0
                            && r.candidate.keywords.contains(&"database".to_string())
                    }),
                    "{alg:?}: {:?}",
                    out.refinements
                        .iter()
                        .map(|r| &r.candidate.keywords)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn generated_rules_cover_spelling_and_stemming() {
        let e = engine(Algorithm::Partition);
        let q = Query::parse("databse publication");
        let rules = e.rules_for(&q);
        assert!(rules
            .iter()
            .any(|(_, r)| r.lhs == ["databse"] && r.rhs == ["database"]));
        assert!(rules
            .iter()
            .any(|(_, r)| r.lhs == ["publication"] && r.rhs == ["publications"]));
    }

    #[test]
    fn baseline_slca_matches_direct_computation() {
        let e = engine(Algorithm::Partition);
        let q = Query::parse("xml john 2003");
        let got = e.baseline_slca(&q, slca::slca_scan_eager).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to_string(), "0");
    }

    #[test]
    fn render_produces_xml_snippet() {
        let e = engine(Algorithm::Partition);
        let out = e.answer("john fishing").unwrap();
        let d = &out.best().unwrap().slcas[0];
        let xml = e.render(d).unwrap();
        assert!(xml.contains("fishing") || xml.contains("John"));
        assert!(e.render(&"0.9.9".parse().unwrap()).is_none());
    }

    #[test]
    fn kv_backed_engine_answers_from_a_persisted_store() {
        // Persist the resident index, reopen it through the kv-backed
        // reader, and check the engine produces the same outcome.
        let resident = engine(Algorithm::Partition);
        let built = Index::build(Arc::new(figure1()));
        let mut store = kvstore::MemKv::default();
        invindex::persist::persist(&built, &mut store).unwrap();
        let kv = KvBackedIndex::open(Box::new(store)).unwrap();
        let e = XRefineEngine::from_reader(
            Arc::new(kv),
            EngineConfig {
                algorithm: Algorithm::Partition,
                k: 2,
                ..Default::default()
            },
        );
        let a = resident.answer("database publication").unwrap();
        let b = e.answer("database publication").unwrap();
        assert_eq!(a.original_ok, b.original_ok);
        assert_eq!(a.refinements.len(), b.refinements.len());
        for (x, y) in a.refinements.iter().zip(b.refinements.iter()) {
            assert_eq!(x.candidate.keywords, y.candidate.keywords);
            assert_eq!(x.slcas, y.slcas);
        }
    }
}

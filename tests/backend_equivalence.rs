//! Backend equivalence: the resident [`Index`] and the lazily decoded
//! `KvBackedIndex` must be indistinguishable through the engine — same
//! refinements, same ranking, same SLCA results — for every algorithm,
//! over a generated workload. Also pins the laziness contract: the first
//! query against a fresh store decodes no more lists than its key set
//! `KS` (query keywords plus rule-generated keywords) requires.

use std::collections::HashSet;
use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, generate_workload, DblpConfig, WorkloadConfig};
use xrefine_repro::invindex::{persist, KvBackedIndex};
use xrefine_repro::kvstore::MemKv;
use xrefine_repro::prelude::*;

fn corpus() -> (Arc<Document>, Vec<Vec<String>>) {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 40,
        ..Default::default()
    }));
    let queries: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 2,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    (doc, queries)
}

fn kv_reader(doc: &Arc<Document>) -> Arc<KvBackedIndex> {
    let built = Index::build(Arc::clone(doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    Arc::new(KvBackedIndex::open(Box::new(store)).unwrap())
}

#[test]
fn all_algorithms_agree_across_backends() {
    let (doc, queries) = corpus();
    assert!(!queries.is_empty());
    let kv = kv_reader(&doc);

    for alg in [
        Algorithm::StackRefine,
        Algorithm::Partition,
        Algorithm::ShortListEager,
    ] {
        let config = EngineConfig {
            algorithm: alg,
            k: 3,
            ..Default::default()
        };
        let resident = XRefineEngine::from_index(Index::build(Arc::clone(&doc)), config.clone());
        let lazy = XRefineEngine::from_reader(Arc::clone(&kv) as Arc<dyn IndexReader>, config);
        for keywords in &queries {
            let q = || Query::from_keywords(keywords.iter().cloned());
            let a = resident.answer_query(q()).unwrap();
            let b = lazy.answer_query(q()).unwrap();
            assert_eq!(a.original_ok, b.original_ok, "{alg:?} {keywords:?}");
            assert_eq!(
                a.refinements.len(),
                b.refinements.len(),
                "{alg:?} {keywords:?}"
            );
            for (x, y) in a.refinements.iter().zip(b.refinements.iter()) {
                assert_eq!(
                    x.candidate.keywords, y.candidate.keywords,
                    "{alg:?} {keywords:?}"
                );
                assert_eq!(
                    x.candidate.dissimilarity, y.candidate.dissimilarity,
                    "{alg:?} {keywords:?}"
                );
                assert_eq!(x.rank_score, y.rank_score, "{alg:?} {keywords:?}");
                assert_eq!(x.slcas, y.slcas, "{alg:?} {keywords:?}");
            }
        }
    }
}

#[test]
fn baseline_slca_agrees_across_backends() {
    let (doc, queries) = corpus();
    let kv = kv_reader(&doc);
    let resident =
        XRefineEngine::from_index(Index::build(Arc::clone(&doc)), EngineConfig::default());
    let lazy = XRefineEngine::from_reader(
        Arc::clone(&kv) as Arc<dyn IndexReader>,
        EngineConfig::default(),
    );
    for keywords in &queries {
        let q = Query::from_keywords(keywords.iter().cloned());
        for method in [
            xrefine_repro::slca::slca_stack as xrefine_repro::xrefine::SlcaMethod,
            xrefine_repro::slca::slca_scan_eager,
            xrefine_repro::slca::slca_multiway,
        ] {
            assert_eq!(
                resident.baseline_slca(&q, method).unwrap(),
                lazy.baseline_slca(&q, method).unwrap(),
                "{keywords:?}"
            );
        }
    }
}

#[test]
fn first_query_decodes_only_the_key_set() {
    // Acceptance criterion for the lazy backend: answering one query from
    // a cold store decodes at most one list per KS keyword that exists in
    // the vocabulary — never the whole index.
    let (doc, queries) = corpus();
    let total_vocab = Index::build(Arc::clone(&doc)).vocabulary().len();
    for keywords in queries.iter().take(4) {
        let kv = kv_reader(&doc);
        let engine = XRefineEngine::from_reader(
            Arc::clone(&kv) as Arc<dyn IndexReader>,
            EngineConfig::default(),
        );
        assert_eq!(kv.cache_stats().lists_decoded, 0, "open must not decode");

        let query = Query::from_keywords(keywords.iter().cloned());
        let rules = engine.rules_for(&query);
        let ks: HashSet<String> = query
            .keywords()
            .iter()
            .cloned()
            .chain(rules.rhs_keywords())
            .collect();
        let ks_in_vocab = ks.iter().filter(|w| kv.contains_keyword(w)).count();

        engine.answer_query(query).unwrap();
        let stats = kv.cache_stats();
        assert!(
            stats.lists_decoded as usize <= ks_in_vocab,
            "{keywords:?}: decoded {} lists for a key set of {}",
            stats.lists_decoded,
            ks_in_vocab
        );
        assert!(
            (stats.lists_decoded as usize) < total_vocab,
            "{keywords:?}: the lazy backend rehydrated the whole index"
        );
    }
}

//! Instrumented cursors over posting lists.
//!
//! The paper's core efficiency claims (Theorems 1 and 2) are about *how
//! often* the keyword inverted lists are scanned. To make those claims
//! testable rather than taken on faith, every traversal in the refinement
//! algorithms goes through a [`ListCursor`], which counts sequential
//! advances and random accesses into shared [`ScanStats`]. Integration
//! tests assert `advances <= list length` for the one-scan algorithms.

use crate::postings::Posting;
use crate::reader::ListHandle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xmldom::Dewey;

/// Shared counters for list-access instrumentation.
#[derive(Debug, Default)]
pub struct ScanStats {
    advances: AtomicU64,
    random_accesses: AtomicU64,
}

impl ScanStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Sequential cursor advances across all instrumented lists.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Relaxed)
    }

    /// Random (seek/probe) accesses across all instrumented lists.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses.load(Ordering::Relaxed)
    }

    fn bump_advance(&self) {
        self.advances.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_random(&self) {
        self.random_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sequential advance performed outside a [`ListCursor`]
    /// (algorithms that account accesses manually, e.g. rescans).
    pub fn record_advance(&self) {
        self.bump_advance();
    }

    /// Records `n` sequential advances at once.
    pub fn record_advances(&self, n: u64) {
        self.advances.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a random (probe) access performed outside a cursor.
    pub fn record_random_access(&self) {
        self.bump_random();
    }
}

/// A forward cursor over one posting list (any [`IndexReader`] backend
/// hands lists out as [`ListHandle`]s).
///
/// [`IndexReader`]: crate::reader::IndexReader
pub struct ListCursor<'a> {
    handle: &'a ListHandle,
    pos: usize,
    stats: Arc<ScanStats>,
}

impl<'a> ListCursor<'a> {
    pub fn new(handle: &'a ListHandle, stats: Arc<ScanStats>) -> Self {
        ListCursor {
            handle,
            pos: 0,
            stats,
        }
    }

    /// The posting under the cursor, or `None` at end of list.
    pub fn peek(&self) -> Option<&'a Posting> {
        self.handle.postings().get(self.pos)
    }

    /// Advances one posting, returning the posting that was under the
    /// cursor. (Deliberately cursor-style rather than `Iterator`: the
    /// callers interleave `peek`/`seek`/`skip_partition`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a Posting> {
        let p = self.handle.postings().get(self.pos)?;
        self.pos += 1;
        self.stats.bump_advance();
        Some(p)
    }

    /// True when all postings have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.handle.len()
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Total length of the underlying list.
    pub fn len(&self) -> usize {
        self.handle.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }

    /// Moves the cursor forward to the first posting `>= target`
    /// (counts as a random access; never moves backward).
    pub fn seek(&mut self, target: &Dewey) {
        self.stats.bump_random();
        let lb = self.handle.lower_bound(target);
        if lb > self.pos {
            self.pos = lb;
        }
    }

    /// Jumps past the end of the partition rooted at `partition_root`
    /// (Algorithm 2 line 8). Returns the index range of the skipped
    /// partition sub-list relative to the whole list. Skipped postings
    /// are accounted with one atomic add, so skipping a large partition
    /// is O(1) in counter traffic.
    pub fn skip_partition(&mut self, partition_root: &Dewey) -> std::ops::Range<usize> {
        let range = self.handle.partition_range(partition_root);
        let consumed = range.end.saturating_sub(self.pos.max(range.start));
        if consumed > 0 {
            self.stats.record_advances(consumed as u64);
        }
        if range.end > self.pos {
            self.pos = range.end;
        }
        range
    }

    /// Underlying handle access for sub-list slicing.
    pub fn handle(&self) -> &'a ListHandle {
        self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::Posting;
    use xmldom::NodeTypeId;

    fn list() -> ListHandle {
        ListHandle::from_postings(
            ["0.0.0", "0.0.1", "0.1.0", "0.1.2", "0.2"]
                .iter()
                .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
                .collect(),
        )
    }

    #[test]
    fn sequential_scan_counts_advances() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        let mut n = 0;
        while c.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(c.is_exhausted());
        assert_eq!(stats.advances(), 5);
        assert_eq!(stats.random_accesses(), 0);
        assert_eq!(c.next(), None);
        assert_eq!(stats.advances(), 5); // no phantom advances at EOF
    }

    #[test]
    fn seek_is_random_access_and_monotone() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        c.seek(&"0.1".parse().unwrap());
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        // seeking backwards does not rewind
        c.seek(&"0.0".parse().unwrap());
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        assert_eq!(stats.random_accesses(), 2);
    }

    #[test]
    fn skip_partition_jumps_whole_subtree() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        let range = c.skip_partition(&"0.0".parse().unwrap());
        assert_eq!(range, 0..2);
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        // skipped postings are accounted as advances (they were consumed)
        assert_eq!(stats.advances(), 2);
        let range = c.skip_partition(&"0.1".parse().unwrap());
        assert_eq!(range, 2..4);
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.2");
    }
}

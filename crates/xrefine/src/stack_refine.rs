//! Algorithm 1: stack-based query refinement.
//!
//! Extends the stack-based SLCA algorithm of \[3\] to the full key set `KS`
//! (original plus rule-generated keywords). The merged stream of all `KS`
//! inverted lists is consumed once; every popped stack entry denotes a
//! node `n` whose witness mask records exactly the keywords contained in
//! `subtree(n)`. At each *meaningful* popped node the dynamic program of
//! §V is invoked with `T =` that witness set, maintaining the running
//! optimal refined query `RQ_min`.
//!
//! SLCA exactness: each entry also keeps the witness masks of its
//! completed child subtrees, so a popped node is recorded as an SLCA of
//! `RQ_min` only when no single child subtree already contained all of
//! `RQ_min`'s keywords (the paper approximates this with selective
//! witness resets; the mask check implements the same intent exactly).

use crate::dp::get_optimal_rq;
use crate::query::RqCandidate;
use crate::results::{RefineOutcome, Refinement};
use crate::session::RefineSession;
use crate::util::KeyMask;
use invindex::ListCursor;
use xmldom::Dewey;

struct Entry {
    component: u32,
    witness: KeyMask,
    child_masks: Vec<KeyMask>,
}

/// Runs Algorithm 1, returning the optimal refined query (possibly the
/// original, at dissimilarity 0) and its meaningful SLCA results.
pub fn stack_refine(session: &RefineSession<'_>) -> RefineOutcome {
    let width = session.width();
    let mut cursors: Vec<ListCursor<'_>> = session
        .lists
        .iter()
        .map(|l| ListCursor::new(l, session.scan_stats.clone()))
        .collect();

    let mut stack: Vec<Entry> = Vec::new();
    let mut best: Option<RqCandidate> = None;
    let mut best_mask = KeyMask::empty(width);
    let mut results: Vec<Dewey> = Vec::new();

    // Reusable closure state for pops.
    let process_pop = |stack: &mut Vec<Entry>,
                       target: usize,
                       best: &mut Option<RqCandidate>,
                       best_mask: &mut KeyMask,
                       results: &mut Vec<Dewey>| {
        while stack.len() > target {
            let entry = stack.pop().expect("len > target");
            let mut comps: Vec<u32> = stack.iter().map(|e| e.component).collect();
            comps.push(entry.component);
            let dewey = Dewey::new(comps).expect("non-empty");

            if session.filter.is_meaningful(&dewey) {
                let availability = |w: &str| {
                    session
                        .pos(w)
                        .map(|i| entry.witness.get(i))
                        .unwrap_or(false)
                };
                if let Some(cand) = get_optimal_rq(&session.query, &availability, &session.rules) {
                    let improved = best
                        .as_ref()
                        .map(|b| cand.dissimilarity < b.dissimilarity)
                        .unwrap_or(true);
                    if improved {
                        // Strictly better: no already-popped node contained
                        // a refined query this cheap, so `dewey` is an
                        // SLCA of `cand` (see module docs).
                        *best_mask = mask_of(session, &cand, width);
                        *best = Some(cand);
                        results.clear();
                        results.push(dewey.clone());
                    } else if best.is_some()
                        && best_mask.is_subset_of(&entry.witness)
                        && !entry.child_masks.iter().any(|c| best_mask.is_subset_of(c))
                    {
                        // This node also contains RQ_min fully and no single
                        // child did: another SLCA of RQ_min.
                        results.push(dewey.clone());
                    }
                }
            }

            if let Some(parent) = stack.last_mut() {
                parent.witness.or_assign(&entry.witness);
                parent.child_masks.push(entry.witness);
            }
        }
    };

    loop {
        // k-way merge: smallest head among cursors, with its list index.
        let mut smallest: Option<(usize, &Dewey)> = None;
        for (i, c) in cursors.iter().enumerate() {
            if let Some(p) = c.peek() {
                match smallest {
                    None => smallest = Some((i, &p.dewey)),
                    Some((_, d)) if p.dewey < *d => smallest = Some((i, &p.dewey)),
                    _ => {}
                }
            }
        }
        let Some((list_idx, _)) = smallest else { break };
        let posting = cursors[list_idx].next().expect("peeked");
        let comps = posting.dewey.components();

        let mut p = 0;
        while p < stack.len() && p < comps.len() && stack[p].component == comps[p] {
            p += 1;
        }
        process_pop(&mut stack, p, &mut best, &mut best_mask, &mut results);
        for &c in &comps[p..] {
            stack.push(Entry {
                component: c,
                witness: KeyMask::empty(width),
                child_masks: Vec::new(),
            });
        }
        if let Some(top) = stack.last_mut() {
            top.witness.set(list_idx);
        }
    }
    process_pop(&mut stack, 0, &mut best, &mut best_mask, &mut results);

    results.sort();
    results.dedup();
    let refinements = match best {
        Some(cand) => vec![Refinement {
            candidate: cand,
            rank_score: 0.0,
            slcas: results,
        }],
        None => Vec::new(),
    };
    let original_ok = refinements
        .first()
        .map(|r| r.candidate.dissimilarity == 0.0)
        .unwrap_or(false);
    RefineOutcome {
        original_ok,
        refinements,
        advances: session.scan_stats.advances(),
        random_accesses: session.scan_stats.random_accesses(),
        degraded: session.degraded.clone(),
    }
}

/// Builds the KS-mask of a candidate's keywords.
fn mask_of(session: &RefineSession<'_>, cand: &RqCandidate, width: usize) -> KeyMask {
    let mut m = KeyMask::empty(width);
    for k in &cand.keywords {
        if let Some(i) = session.pos(k) {
            m.set(i);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use invindex::Index;
    use lexicon::RuleSet;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    fn session(q: &[&str]) -> (Arc<Index>, Query, RuleSet) {
        let idx = Arc::new(Index::build(Arc::new(figure1())));
        (
            idx,
            Query::from_keywords(q.iter().map(|s| s.to_string())),
            RuleSet::table2(),
        )
    }

    #[test]
    fn original_query_with_meaningful_result_needs_no_refinement() {
        let (idx, q, rules) = session(&["john", "fishing"]);
        let s = RefineSession::new(idx.as_ref(), q, rules).unwrap();
        let out = stack_refine(&s);
        assert!(out.original_ok);
        let best = out.best().unwrap();
        assert_eq!(best.candidate.dissimilarity, 0.0);
        assert!(!best.slcas.is_empty());
        // the SLCA is inside author 0.1
        for d in &best.slcas {
            assert!(d.to_string().starts_with("0.1"));
        }
    }

    #[test]
    fn example4_merges_on_line_data_base() {
        // Example 4 flavour: {on, line, data, base} has no match for "on".
        // In the Figure 1 fixture the cheapest repair is a single merge
        // (on+line -> online) keeping "data" and "base", which all occur
        // under author 0.0 (dSim = 1); the two-merge {online, database}
        // (dSim = 2) is the runner-up.
        let (idx, q, rules) = session(&["on", "line", "data", "base"]);
        let s = RefineSession::new(idx.as_ref(), q, rules).unwrap();
        let out = stack_refine(&s);
        assert!(!out.original_ok);
        let best = out.best().unwrap();
        assert_eq!(best.candidate.keywords, ["base", "data", "online"]);
        assert_eq!(best.candidate.dissimilarity, 1.0);
        assert!(!best.slcas.is_empty());
        assert!(best.slcas.iter().all(|d| d.to_string().starts_with("0.0")));
    }

    #[test]
    fn one_scan_guarantee_theorem1() {
        let (idx, q, rules) = session(&["on", "line", "data", "base"]);
        let s = RefineSession::new(idx.as_ref(), q, rules).unwrap();
        let budget = s.total_list_len() as u64;
        let out = stack_refine(&s);
        assert!(out.advances <= budget, "{} > {budget}", out.advances);
        assert_eq!(out.random_accesses, 0);
    }

    #[test]
    fn no_candidate_when_nothing_matches() {
        let (idx, q, _) = session(&["qqq", "zzz"]);
        let s = RefineSession::new(idx.as_ref(), q, RuleSet::new()).unwrap();
        let out = stack_refine(&s);
        assert!(out.refinements.is_empty());
        assert!(!out.original_ok);
    }

    #[test]
    fn root_only_cover_is_not_meaningful() {
        // {xml, john, 2003}: only the root covers all three; the optimal
        // meaningful refinement must therefore drop a keyword.
        let (idx, q, rules) = session(&["xml", "john", "2003"]);
        let s = RefineSession::new(idx.as_ref(), q, rules).unwrap();
        let out = stack_refine(&s);
        assert!(!out.original_ok);
        let best = out.best().unwrap();
        assert!(best.candidate.dissimilarity > 0.0);
        assert!(!best.slcas.is_empty());
        for d in &best.slcas {
            assert_ne!(d.to_string(), "0");
        }
    }
}

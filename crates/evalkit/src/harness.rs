//! The effectiveness harness: runs a ranking-model variant over a
//! workload and reports average CG@1..K — the machinery behind Tables
//! VIII, IX and X.

use crate::cg::{average_cg, cumulated_gain};
use crate::oracle::gain_vector;
use datagen::{PerturbKind, WorkloadQuery};
use std::sync::Arc;
use xmldom::Document;
use xrefine::{Algorithm, EngineConfig, Query, RankingConfig, XRefineEngine};

/// One row of a CG table.
#[derive(Debug, Clone)]
pub struct CgRow {
    pub label: String,
    /// `CG@1..=k` averaged over the query pool.
    pub cg: Vec<f64>,
    /// Number of queries that produced at least one refinement.
    pub answered: usize,
    pub total: usize,
}

/// Evaluates one ranking configuration over a workload, asking the engine
/// for Top-K refinements per query.
pub fn evaluate_ranking(
    doc: Arc<Document>,
    workload: &[WorkloadQuery],
    ranking: RankingConfig,
    k: usize,
    label: &str,
) -> CgRow {
    let engine = XRefineEngine::from_document(
        doc,
        EngineConfig {
            algorithm: Algorithm::Partition,
            k,
            ranking,
            ..Default::default()
        },
    );
    evaluate_with_engine(&engine, workload, k, label)
}

/// Same, over an existing engine (so callers can share the index).
pub fn evaluate_with_engine(
    engine: &XRefineEngine,
    workload: &[WorkloadQuery],
    k: usize,
    label: &str,
) -> CgRow {
    let mut per_query: Vec<Vec<f64>> = Vec::new();
    let mut answered = 0;
    for wq in workload {
        let out = engine
            .answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
            .expect("query answered");
        let ranked: Vec<Vec<String>> = out
            .refinements
            .iter()
            .map(|r| r.candidate.keywords.clone())
            .collect();
        if !ranked.is_empty() {
            answered += 1;
        }
        let gains = gain_vector(wq, &ranked, k);
        per_query.push(cumulated_gain(&gains));
    }
    CgRow {
        label: label.to_string(),
        cg: average_cg(&per_query, k),
        answered,
        total: workload.len(),
    }
}

/// Filters a workload to the queries that actually need refinement (the
/// paper's 50-query effectiveness pool excludes queries with results).
pub fn refinement_pool(workload: &[WorkloadQuery]) -> Vec<WorkloadQuery> {
    workload
        .iter()
        .filter(|q| q.kind != PerturbKind::None)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_dblp, generate_workload, DblpConfig, WorkloadConfig};

    fn setup() -> (Arc<Document>, Vec<WorkloadQuery>) {
        let doc = Arc::new(generate_dblp(&DblpConfig {
            authors: 30,
            ..Default::default()
        }));
        let wl = generate_workload(
            &doc,
            &WorkloadConfig {
                per_kind: 3,
                ..Default::default()
            },
        );
        (doc, refinement_pool(&wl))
    }

    #[test]
    fn full_model_produces_nonzero_cg() {
        let (doc, pool) = setup();
        assert!(!pool.is_empty());
        let row = evaluate_ranking(doc, &pool, RankingConfig::rs0(), 4, "RS0");
        assert_eq!(row.cg.len(), 4);
        // CG is monotone non-decreasing
        assert!(row.cg.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(row.answered > 0, "no query was answered at all");
        assert!(row.cg[3] > 0.0, "CG@4 should be positive: {row:?}");
    }

    #[test]
    fn variants_run_and_differ_in_label() {
        let (doc, pool) = setup();
        let small: Vec<_> = pool.into_iter().take(4).collect();
        let rows: Vec<CgRow> = (1..=4)
            .map(|i| {
                evaluate_ranking(
                    Arc::clone(&doc),
                    &small,
                    RankingConfig::without_guideline(i),
                    4,
                    &format!("RS{i}"),
                )
            })
            .collect();
        assert_eq!(rows.len(), 4);
        for r in rows {
            assert_eq!(r.total, 4);
        }
    }
}

//! Online-maintenance bench: update throughput through the WAL-backed
//! [`LiveEngine`] and — the number the epoch/snapshot handoff exists
//! for — read latency while a writer commits, against the idle
//! baseline. Emits `results/BENCH_update.json` and exits non-zero when
//! the concurrent read p99 exceeds `2 × idle p99` (plus a small noise
//! floor): a committing writer must not block readers.
//!
//! Also reports the at-rest store footprint of the seed corpus —
//! compressed (v4) vs uncompressed (v3) bytes and cache resident bytes
//! at a fixed budget (`bench::store_footprint`) — under the `store`
//! key.
//!
//! Knobs (environment): `UPDATE_BENCH_SECS` per-phase duration (default
//! 2), `UPDATE_BENCH_READERS` reader threads (default 4),
//! `UPDATE_BENCH_RECORDS` seed corpus records (default 150),
//! `UPDATE_BENCH_COMPACT_EVERY` commits per compaction (default 16),
//! `UPDATE_BENCH_CACHE_BYTES` footprint cache budget (default 32768).

use bench::{percentile, store_footprint};
use invindex::maint::MaintOp;
use invindex::{build_streaming, persist};
use kvstore::{DiskKv, FaultVfs, KvStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use xrefine::{EngineConfig, LiveEngine};

const WORDS: &[&str] = &[
    "xml",
    "keyword",
    "query",
    "refinement",
    "index",
    "stack",
    "stream",
    "dewey",
    "slca",
    "ranking",
    "maintenance",
    "snapshot",
    "epoch",
    "compaction",
    "wal",
    "durable",
    "torture",
    "handoff",
    "generation",
    "overlay",
];

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn seed_corpus(records: usize) -> String {
    let mut xml = String::from("<bib>");
    for i in 0..records {
        let a = WORDS[i % WORDS.len()];
        let b = WORDS[(i / WORDS.len() + i) % WORDS.len()];
        let c = WORDS[(i * 7 + 3) % WORDS.len()];
        xml.push_str(&format!(
            "<paper><title>{a} {b} {c}</title><year>{}</year></paper>",
            1990 + (i % 35)
        ));
    }
    xml.push_str("</bib>");
    xml
}

fn queries() -> Vec<String> {
    let mut qs = Vec::new();
    for i in 0..WORDS.len() {
        qs.push(format!("{} {}", WORDS[i], WORDS[(i + 5) % WORDS.len()]));
    }
    qs
}

/// `readers` threads answering queries round-robin for `secs`. Returns
/// all observed latencies.
fn read_phase(live: &Arc<LiveEngine>, readers: usize, secs: f64) -> Vec<Duration> {
    let qs = Arc::new(queries());
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let live = Arc::clone(live);
            let qs = Arc::clone(&qs);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut lat = Vec::new();
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    let t0 = Instant::now();
                    live.engine().answer(q).expect("bench read");
                    lat.push(t0.elapsed());
                }
                lat
            })
        })
        .collect();
    thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("reader thread"));
    }
    all
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn latency_json(latencies: &mut [Duration]) -> String {
    latencies.sort_unstable();
    let max = latencies.last().copied().unwrap_or(Duration::ZERO);
    format!(
        "{{\"samples\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
        latencies.len(),
        ms(percentile(latencies, 0.50)),
        ms(percentile(latencies, 0.99)),
        ms(max),
    )
}

fn main() {
    let secs = env_f64("UPDATE_BENCH_SECS", 2.0);
    let readers = env_usize("UPDATE_BENCH_READERS", 4);
    let records = env_usize("UPDATE_BENCH_RECORDS", 150);
    let compact_every = env_usize("UPDATE_BENCH_COMPACT_EVERY", 16).max(1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_update.json".to_string());

    // The store lives on the in-memory fault VFS: the bench measures
    // the maintenance pipeline (rebuild-diff, WAL append, epoch
    // publish), not host disk jitter.
    let vfs = FaultVfs::new().as_dyn();
    let base = PathBuf::from("/bench/store.db");
    let built = build_streaming(&seed_corpus(records), 1).expect("seed build");
    let mut disk = DiskKv::open_with_vfs(&vfs, &base.with_extension("db")).expect("seed open");
    persist::persist(&built, &mut disk).expect("seed persist");
    disk.sync().expect("seed sync");
    let live = Arc::new(
        LiveEngine::open_with_vfs(vfs, &base, EngineConfig::default()).expect("open live engine"),
    );
    println!(
        "corpus: {records} records; {readers} reader(s); {secs}s per phase; \
         compact every {compact_every} commit(s)"
    );

    // At-rest footprint of the seed index, measured before the metric
    // snapshot so the footprint warm-up pass doesn't pollute the
    // update-phase counter deltas.
    let keyword_sets: Vec<Vec<String>> = queries()
        .iter()
        .map(|q| q.split_whitespace().map(str::to_string).collect())
        .collect();
    let cache_budget = env_usize("UPDATE_BENCH_CACHE_BYTES", 32 * 1024);
    let footprint = store_footprint(&built, &keyword_sets, cache_budget);
    println!(
        "store: v3 {} B, v4 {} B ({:.2}x smaller); cache resident {} B of {} B (hit rate {:.3})",
        footprint.v3_bytes,
        footprint.v4_bytes,
        footprint.v3_bytes as f64 / footprint.v4_bytes.max(1) as f64,
        footprint.cache.cached_bytes,
        cache_budget,
        footprint.cache_hit_rate(),
    );

    let before = obs::global().snapshot();

    // Phase 1 — idle baseline: readers only.
    let mut idle = read_phase(&live, readers, secs);
    idle.sort_unstable();
    let idle_p99 = percentile(&idle, 0.99);
    println!(
        "idle reads: {} samples, p50 {:.3} ms, p99 {:.3} ms",
        idle.len(),
        ms(percentile(&idle, 0.50)),
        ms(idle_p99)
    );

    // Phase 2 — a writer commits add/remove transactions (compacting
    // periodically) while the same readers run.
    let stop_writer = Arc::new(AtomicBool::new(false));
    let writer = {
        let live = Arc::clone(&live);
        let stop = Arc::clone(&stop_writer);
        thread::spawn(move || {
            let mut commits = 0u64;
            let mut commit_lat = Vec::new();
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let op = if n.is_multiple_of(2) {
                    MaintOp::Add {
                        fragment: format!(
                            "<paper><title>{} {} inserted</title></paper>",
                            WORDS[n % WORDS.len()],
                            WORDS[(n + 11) % WORDS.len()]
                        ),
                    }
                } else {
                    // Remove the record the previous iteration added,
                    // keeping the corpus size (and read cost) steady.
                    MaintOp::Remove {
                        slot: live.maint().record_count() - 1,
                    }
                };
                let t0 = Instant::now();
                live.update(&[op]).expect("bench commit");
                commit_lat.push(t0.elapsed());
                commits += 1;
                n += 1;
                if commits.is_multiple_of(compact_every as u64) {
                    live.compact().expect("bench compact");
                }
            }
            (commits, commit_lat)
        })
    };
    let mut concurrent = read_phase(&live, readers, secs);
    stop_writer.store(true, Ordering::Relaxed);
    let (commits, mut commit_lat) = writer.join().expect("writer thread");
    concurrent.sort_unstable();
    let concurrent_p99 = percentile(&concurrent, 0.99);
    let update_tps = commits as f64 / secs;
    println!(
        "concurrent reads: {} samples, p50 {:.3} ms, p99 {:.3} ms; \
         writer: {commits} commit(s) ({update_tps:.1}/s)",
        concurrent.len(),
        ms(percentile(&concurrent, 0.50)),
        ms(concurrent_p99)
    );

    let metrics = obs::global().snapshot().delta_since(&before);
    let json = format!(
        "{{\n  \"corpus_records\": {records},\n  \"readers\": {readers},\n  \
         \"phase_secs\": {secs:.1},\n  \
         \"idle_reads\": {},\n  \"concurrent_reads\": {},\n  \
         \"writer\": {{\"commits\": {commits}, \"updates_per_sec\": {update_tps:.2}, \
         \"commit_latency\": {}}},\n  \
         \"p99_ratio\": {:.3},\n  \"store\": {},\n  \"metrics\": {}\n}}\n",
        latency_json(&mut idle),
        latency_json(&mut concurrent),
        latency_json(&mut commit_lat),
        concurrent_p99.as_secs_f64() / idle_p99.as_secs_f64().max(1e-9),
        footprint.json(),
        metrics.render_json(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_update.json");
    println!("wrote {out_path}");

    // Acceptance gate: a committing writer must leave the read tail
    // within 2× of idle (plus 5 ms of scheduler noise floor).
    let ceiling = idle_p99 * 2 + Duration::from_millis(5);
    if concurrent_p99 > ceiling {
        eprintln!(
            "READ TAIL VIOLATION: concurrent p99 {:.3} ms > 2x idle p99 {:.3} ms + 5 ms",
            ms(concurrent_p99),
            ms(idle_p99)
        );
        std::process::exit(1);
    }
}

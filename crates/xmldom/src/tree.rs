//! The in-memory XML document tree.
//!
//! Documents are stored as an arena of element nodes in document order.
//! Each node records its tag symbol, Dewey label, node type (interned
//! prefix path, Definition 3.1), parent/children links, attributes and the
//! text content placed directly under it.

use crate::dewey::Dewey;
use crate::intern::{NodeTypeId, NodeTypeTable, Symbol, SymbolTable};

/// Arena index of a node within its [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An element node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Interned tag name.
    pub tag: Symbol,
    /// Dewey label; unique within the document.
    pub dewey: Dewey,
    /// Interned prefix path (node type).
    pub node_type: NodeTypeId,
    /// Parent node, `None` for the root element.
    pub parent: Option<NodeId>,
    /// Child elements in document order.
    pub children: Vec<NodeId>,
    /// Attributes in source order.
    pub attributes: Vec<(String, String)>,
    /// Concatenated character data directly under this element (child
    /// element text is *not* included; it lives on the child).
    pub text: String,
}

/// A parsed XML document.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    symbols: SymbolTable,
    node_types: NodeTypeTable,
}

impl Document {
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        symbols: SymbolTable,
        node_types: NodeTypeTable,
    ) -> Self {
        Document {
            nodes,
            symbols,
            node_types,
        }
    }

    /// The root element. Every well-formed document has one.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of element nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in document order (arena order == pre-order).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    pub fn node_types(&self) -> &NodeTypeTable {
        &self.node_types
    }

    /// Tag name of a node.
    pub fn tag_name(&self, id: NodeId) -> &str {
        self.symbols.resolve(self.node(id).tag)
    }

    /// Finds the node carrying a given Dewey label via binary search over
    /// the (document-ordered) arena.
    pub fn node_by_dewey(&self, dewey: &Dewey) -> Option<NodeId> {
        self.nodes
            .binary_search_by(|n| n.dewey.cmp(dewey))
            .ok()
            .map(|i| NodeId(i as u32))
    }

    /// The deepest element whose Dewey label is `dewey` or an ancestor of
    /// it. Useful for resolving an arbitrary (possibly non-element) label
    /// to its enclosing element.
    pub fn enclosing_node(&self, dewey: &Dewey) -> Option<NodeId> {
        let mut cur = dewey.clone();
        loop {
            if let Some(id) = self.node_by_dewey(&cur) {
                return Some(id);
            }
            cur = cur.parent()?;
        }
    }

    /// Pre-order subtree traversal rooted at `id` (inclusive).
    pub fn descendants_or_self(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let root_dewey = self.node(id).dewey.clone();
        let start = id.0 as usize;
        self.nodes[start..]
            .iter()
            .enumerate()
            .take_while(move |(_, n)| root_dewey.is_ancestor_or_self_of(&n.dewey))
            .map(move |(off, _)| NodeId((start + off) as u32))
    }

    /// Renders the subtree rooted at `id` back to XML text.
    pub fn subtree_to_xml(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out, 0);
        out
    }

    /// Renders the whole document to XML text (no declaration).
    pub fn to_xml(&self) -> String {
        self.subtree_to_xml(self.root())
    }

    fn write_node(&self, id: NodeId, out: &mut String, indent: usize) {
        let n = self.node(id);
        let tag = self.symbols.resolve(n.tag);
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(tag);
        for (k, v) in &n.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if n.children.is_empty() && n.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if n.children.is_empty() {
            escape_into(&n.text, out);
            out.push_str("</");
            out.push_str(tag);
            out.push_str(">\n");
            return;
        }
        out.push('\n');
        if !n.text.is_empty() {
            for _ in 0..=indent {
                out.push_str("  ");
            }
            escape_into(&n.text, out);
            out.push('\n');
        }
        for &c in &n.children {
            self.write_node(c, out, indent + 1);
        }
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str("</");
        out.push_str(tag);
        out.push_str(">\n");
    }
}

/// Escapes `&`, `<`, `>`, `"` for XML output.
pub fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

/// Incremental builder used by the parser and by the data generators.
#[derive(Debug)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    symbols: SymbolTable,
    node_types: NodeTypeTable,
    /// Stack of open elements (arena ids).
    open: Vec<NodeId>,
    /// Prefix path of the currently open element chain.
    path: Vec<Symbol>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    pub fn new() -> Self {
        DocumentBuilder {
            nodes: Vec::new(),
            symbols: SymbolTable::new(),
            node_types: NodeTypeTable::new(),
            open: Vec::new(),
            path: Vec::new(),
        }
    }

    /// Opens a child element under the current element (or the root if
    /// nothing is open yet; only one root is allowed).
    pub fn open_element(&mut self, tag: &str) -> NodeId {
        let sym = self.symbols.intern(tag);
        self.path.push(sym);
        let node_type = self.node_types.intern(&self.path);
        let (dewey, parent) = match self.open.last() {
            None => {
                assert!(self.nodes.is_empty(), "document already has a root element");
                (Dewey::root(), None)
            }
            Some(&p) => {
                let parent_node = &self.nodes[p.0 as usize];
                let ordinal = parent_node.children.len() as u32;
                (parent_node.dewey.child(ordinal), Some(p))
            }
        };
        let id = NodeId(self.nodes.len() as u32);
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        self.nodes.push(Node {
            tag: sym,
            dewey,
            node_type,
            parent,
            children: Vec::new(),
            attributes: Vec::new(),
            text: String::new(),
        });
        self.open.push(id);
        id
    }

    /// Adds an attribute to the currently open element.
    pub fn attribute(&mut self, name: &str, value: &str) {
        let id = *self.open.last().expect("no open element for attribute");
        self.nodes[id.0 as usize]
            .attributes
            .push((name.to_string(), value.to_string()));
    }

    /// Adds an attribute to the currently open element, taking ownership
    /// of already-allocated strings (the streaming merge path).
    pub fn attribute_owned(&mut self, name: String, value: String) {
        let id = *self.open.last().expect("no open element for attribute");
        self.nodes[id.0 as usize].attributes.push((name, value));
    }

    /// Appends character data to the currently open element.
    pub fn text(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        let id = *self.open.last().expect("no open element for text");
        let node = &mut self.nodes[id.0 as usize];
        if !node.text.is_empty() {
            node.text.push(' ');
        }
        node.text.push_str(text);
    }

    /// Like [`DocumentBuilder::text`], but moves the string into the
    /// element when it is the first (usually only) segment.
    pub fn text_owned(&mut self, text: String) {
        if text.is_empty() {
            return;
        }
        let id = *self.open.last().expect("no open element for text");
        let node = &mut self.nodes[id.0 as usize];
        if node.text.is_empty() {
            node.text = text;
        } else {
            node.text.push(' ');
            node.text.push_str(&text);
        }
    }

    /// Closes the currently open element.
    pub fn close_element(&mut self) {
        self.open.pop().expect("close without open element");
        self.path.pop();
    }

    /// Read access to an already-built node. Streaming index builders
    /// replay events through the builder and need the Dewey label and
    /// node type the builder just assigned.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Convenience: a leaf element with text content.
    pub fn leaf(&mut self, tag: &str, text: &str) -> NodeId {
        let id = self.open_element(tag);
        self.text(text);
        self.close_element();
        id
    }

    /// True once the root element has been closed.
    pub fn is_complete(&self) -> bool {
        !self.nodes.is_empty() && self.open.is_empty()
    }

    /// Finishes the build. Panics if elements remain open or no root was
    /// ever produced; the parser maps these to proper errors beforehand.
    pub fn finish(self) -> Document {
        assert!(self.open.is_empty(), "unclosed elements at finish");
        assert!(!self.nodes.is_empty(), "empty document");
        Document::from_parts(self.nodes, self.symbols, self.node_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the bibliography example of the paper's Figure 1, trimmed.
    fn small_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.open_element("bib");
        {
            b.open_element("author");
            b.leaf("name", "Mike Franklin");
            b.open_element("publications");
            {
                b.open_element("inproceedings");
                b.leaf("title", "online database tuning");
                b.leaf("year", "2003");
                b.close_element();
            }
            b.close_element();
            b.close_element();
        }
        {
            b.open_element("author");
            b.leaf("name", "John Doe");
            b.leaf("hobby", "fishing");
            b.close_element();
        }
        b.close_element();
        b.finish()
    }

    #[test]
    fn dewey_labels_follow_structure() {
        let doc = small_doc();
        let root = doc.root();
        assert_eq!(doc.node(root).dewey.to_string(), "0");
        assert_eq!(doc.tag_name(root), "bib");
        let a0 = doc.node(root).children[0];
        assert_eq!(doc.node(a0).dewey.to_string(), "0.0");
        let a1 = doc.node(root).children[1];
        assert_eq!(doc.node(a1).dewey.to_string(), "0.1");
        let name0 = doc.node(a0).children[0];
        assert_eq!(doc.node(name0).dewey.to_string(), "0.0.0");
        assert_eq!(doc.node(name0).text, "Mike Franklin");
    }

    #[test]
    fn arena_order_is_document_order() {
        let doc = small_doc();
        let labels: Vec<Dewey> = doc.nodes().map(|(_, n)| n.dewey.clone()).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn node_by_dewey_finds_every_node() {
        let doc = small_doc();
        for (id, n) in doc.nodes() {
            assert_eq!(doc.node_by_dewey(&n.dewey), Some(id));
        }
        assert_eq!(doc.node_by_dewey(&"0.9.9".parse().unwrap()), None);
    }

    #[test]
    fn enclosing_node_walks_up() {
        let doc = small_doc();
        // 0.0.1.0.0.99 does not exist; nearest existing ancestor is 0.0.1.0.0
        let id = doc
            .enclosing_node(&"0.0.1.0.0.99".parse().unwrap())
            .unwrap();
        assert_eq!(doc.node(id).dewey.to_string(), "0.0.1.0.0");
    }

    #[test]
    fn descendants_or_self_covers_subtree_only() {
        let doc = small_doc();
        let a0 = doc.node(doc.root()).children[0];
        let subtree: Vec<String> = doc
            .descendants_or_self(a0)
            .map(|id| doc.node(id).dewey.to_string())
            .collect();
        assert_eq!(
            subtree,
            ["0.0", "0.0.0", "0.0.1", "0.0.1.0", "0.0.1.0.0", "0.0.1.0.1"]
        );
    }

    #[test]
    fn node_types_distinguish_paths() {
        let doc = small_doc();
        let types = doc.node_types();
        let syms = doc.symbols();
        let a0 = doc.node(doc.root()).children[0];
        let a1 = doc.node(doc.root()).children[1];
        assert_eq!(doc.node(a0).node_type, doc.node(a1).node_type);
        assert_eq!(types.display(doc.node(a0).node_type, syms), "bib/author");
    }

    #[test]
    fn xml_rendering_mentions_all_tags() {
        let doc = small_doc();
        let xml = doc.to_xml();
        for tag in ["bib", "author", "publications", "inproceedings", "hobby"] {
            assert!(xml.contains(&format!("<{tag}")), "missing {tag} in {xml}");
        }
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn second_root_panics() {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.close_element();
        b.open_element("b");
    }
}

//! Parallel index construction.
//!
//! The sequential builder (`Index::build`) is a two-pass algorithm; both
//! passes decompose cleanly:
//!
//! * pass 1 (tokenize + count): nodes are tokenized in parallel chunks;
//!   interning and document-order assembly stay sequential (they are a
//!   small fraction of the work);
//! * pass 2 (`f^T_k` distinct-ancestor counting): embarrassingly parallel
//!   across keywords — each worker owns a disjoint keyword range and
//!   produces a local `df` map, merged at the end.
//!
//! The result is bit-identical to the sequential build — *including
//! keyword ids and persisted store bytes*, not merely string-keyed
//! lookups. Workers record each node's tokens in first-encounter order
//! (tag, then text, then attributes — the sequential builder's traversal
//! order), and pass 1b interns them in sequential node order, so id
//! assignment is independent of the thread count and chunking. The
//! equivalence tests assert id-level equality, and
//! `tests/parallel_persist.rs` asserts persisted byte-identity; callers
//! can switch builders freely.

use crate::dfpass;
use crate::index::Index;
use crate::postings::{Posting, PostingList};
use crate::stats::{KeywordTable, TypeStats};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{tokenize, Document};

/// One worker's output for pass 1a: `(node id, token counts in
/// first-encounter order)`. Encounter order matters: pass 1b interns in
/// exactly this order to reproduce the sequential builder's keyword ids.
type TokenizedChunk = Vec<(u32, Vec<(String, u64)>)>;

/// Builds the index using up to `threads` worker threads. `threads == 0`
/// or `1` falls back to the sequential builder.
pub fn build_parallel(doc: Arc<Document>, threads: usize) -> Index {
    if threads <= 1 {
        return Index::build(doc);
    }
    let num_types = doc.node_types().len();
    let node_count = doc.len();

    // ---- pass 1a (parallel): tokenize every node ---------------------
    // Each worker produces, for its node range, the per-node token counts
    // (as strings; interning happens sequentially afterwards).
    let node_ids: Vec<u32> = (0..node_count as u32).collect();
    let chunk = node_count.div_ceil(threads).max(1);
    let mut tokenized: Vec<TokenizedChunk> = Vec::new();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for ids in node_ids.chunks(chunk) {
            let doc = &doc;
            handles.push(s.spawn(move |_| {
                let mut out = Vec::with_capacity(ids.len());
                // Per-node token counts in first-encounter order: the
                // Vec keeps the order the sequential builder would intern
                // in, the map only deduplicates repeats.
                let mut order: Vec<(String, u64)> = Vec::new();
                let mut seen: HashMap<String, usize> = HashMap::new();
                for &raw in ids {
                    let id = xmldom::NodeId(raw);
                    order.clear();
                    seen.clear();
                    let mut bump = |tok: String| match seen.get(&tok) {
                        Some(&i) => order[i].1 += 1,
                        None => {
                            seen.insert(tok.clone(), order.len());
                            order.push((tok, 1));
                        }
                    };
                    for tok in tokenize(doc.tag_name(id)) {
                        bump(tok);
                    }
                    for tok in tokenize(&doc.node(id).text) {
                        bump(tok);
                    }
                    for (name, value) in &doc.node(id).attributes {
                        for tok in tokenize(name).into_iter().chain(tokenize(value)) {
                            bump(tok);
                        }
                    }
                    if !order.is_empty() {
                        out.push((raw, order.clone()));
                    }
                }
                out
            }));
        }
        for h in handles {
            tokenized.push(h.join().expect("tokenizer worker panicked"));
        }
    })
    .expect("crossbeam scope");

    // ---- pass 1b (sequential): intern, postings, N_T, tf -------------
    // Chunks arrive in node order and each node's tokens are in
    // first-encounter order, so `vocab.intern` sees first occurrences in
    // exactly the sequential builder's order: keyword ids (and therefore
    // persisted bytes) are identical regardless of thread count.
    let prefixes = dfpass::prefix_type_table(&doc);
    let mut vocab = KeywordTable::new();
    let mut lists: Vec<PostingList> = Vec::new();
    let mut stats = TypeStats::new(num_types);
    for (_, node) in doc.nodes() {
        stats.bump_n_nodes(node.node_type);
    }
    for chunk in &tokenized {
        for (raw, counts) in chunk {
            let id = xmldom::NodeId(*raw);
            let node = doc.node(id);
            for (tok, c) in counts {
                let k = vocab.intern(tok);
                while lists.len() <= k.0 as usize {
                    lists.push(PostingList::new());
                }
                lists[k.0 as usize].push(Posting::new(node.dewey.clone(), node.node_type));
                for &t in &prefixes[node.node_type.0 as usize] {
                    stats.add_tf(t, k, *c);
                }
            }
        }
    }

    // ---- pass 2 (parallel): f^T_k per keyword, shared with the
    // streaming builder ------------------------------------------------
    for ((t, k), v) in dfpass::compute_df(&doc, &lists, threads) {
        stats.add_df(t, k, v);
    }

    Index::from_parts(doc, vocab, lists, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::fixtures::figure1;

    fn equivalent(doc: Arc<Document>, threads: usize) {
        let seq = Index::build(Arc::clone(&doc));
        let par = build_parallel(doc, threads);
        assert_eq!(seq.vocabulary().len(), par.vocabulary().len());
        // ids must match exactly, not merely the string-keyed lookups:
        // determinism of the interning order is part of the contract
        // (persisted stores must be byte-identical).
        for (k_seq, text) in seq.vocabulary().iter() {
            assert_eq!(
                par.vocabulary().get(text),
                Some(k_seq),
                "{text} interned under a different id with {threads} threads"
            );
            assert_eq!(par.vocabulary().resolve(k_seq), text);
            assert_eq!(
                seq.list_by_id(k_seq),
                par.list_by_id(k_seq),
                "lists differ for {text}"
            );
            for t in seq.document().node_types().iter() {
                assert_eq!(seq.stats().tf(t, k_seq), par.stats().tf(t, k_seq), "{text}");
                assert_eq!(seq.stats().df(t, k_seq), par.stats().df(t, k_seq), "{text}");
            }
        }
        for t in seq.document().node_types().iter() {
            assert_eq!(seq.stats().n_nodes(t), par.stats().n_nodes(t));
            assert_eq!(
                seq.stats().distinct_keywords(t),
                par.stats().distinct_keywords(t)
            );
        }
    }

    #[test]
    fn parallel_build_matches_sequential_on_figure1() {
        for threads in [2, 3, 8] {
            equivalent(Arc::new(figure1()), threads);
        }
    }

    #[test]
    fn one_thread_falls_back_to_sequential() {
        let doc = Arc::new(figure1());
        let a = Index::build(Arc::clone(&doc));
        let b = build_parallel(doc, 1);
        assert_eq!(a.total_postings(), b.total_postings());
    }
}

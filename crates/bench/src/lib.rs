//! `bench` — shared infrastructure for the table/figure regeneration
//! binaries (one per experiment; see DESIGN.md §3) and the Criterion
//! benches.

use datagen::{generate_baseball, generate_dblp, BaseballConfig, DblpConfig};
use invindex::reader::IndexReader;
use invindex::{persist, CacheStats, Index, KvBackedIndex};
use kvstore::{KvStore, MemKv};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldom::Document;
use xrefine::{Algorithm, EngineConfig, Query, RankingConfig, XRefineEngine};

/// The standard DBLP corpus used by the experiment binaries. ~2000
/// authors keeps a single experiment run under a minute while preserving
/// the frequency skew the algorithms exploit.
pub fn dblp_config() -> DblpConfig {
    DblpConfig {
        authors: 2000,
        ..Default::default()
    }
}

/// Builds the standard DBLP corpus (optionally scaled, Figure 6).
pub fn dblp(fraction: f64) -> Arc<Document> {
    Arc::new(generate_dblp(&dblp_config().scaled(fraction)))
}

/// Builds the standard Baseball corpus.
pub fn baseball() -> Arc<Document> {
    Arc::new(generate_baseball(&BaseballConfig {
        leagues: 2,
        divisions_per_league: 3,
        teams_per_division: 6,
        players_per_team: 20,
        ..Default::default()
    }))
}

/// Builds an engine with the given algorithm and K.
pub fn engine(doc: Arc<Document>, algorithm: Algorithm, k: usize) -> XRefineEngine {
    XRefineEngine::from_document(
        doc,
        EngineConfig {
            algorithm,
            k,
            ranking: RankingConfig::default(),
            ..Default::default()
        },
    )
}

/// Like [`engine`], over an already-built index (e.g. one produced by
/// the streaming ingest pipeline).
pub fn engine_from_index(index: invindex::Index, algorithm: Algorithm, k: usize) -> XRefineEngine {
    XRefineEngine::from_index(
        index,
        EngineConfig {
            algorithm,
            k,
            ranking: RankingConfig::default(),
            ..Default::default()
        },
    )
}

/// Hot-cache timing: one warm-up run, then the mean over `reps`
/// measured runs, in milliseconds.
pub fn time_ms<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warm-up (the paper reports hot-cache numbers)
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

/// Runs a query through the engine's configured algorithm (the quantity
/// the paper times: refinement + SLCA generation end-to-end). Returns the
/// total number of SLCA results across the returned refinements.
pub fn answer(engine: &XRefineEngine, keywords: &[String]) -> usize {
    let out = engine
        .answer_query(Query::from_keywords(keywords.iter().cloned()))
        .expect("query answered");
    out.refinements.iter().map(|r| r.slcas.len()).sum()
}

/// At-rest and resident cost of an index: persisted size at the flat
/// (v3) and compressed (v4) store formats, plus the `ShardedListCache`
/// state after one pass of a query workload over a cache-budgeted
/// reader on the compressed store.
pub struct StoreFootprint {
    pub v3_bytes: usize,
    pub v4_bytes: usize,
    pub cache_budget: usize,
    pub cache: CacheStats,
}

impl StoreFootprint {
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }

    /// JSON fragment shared by the serving/update benches.
    pub fn json(&self) -> String {
        format!(
            "{{\"uncompressed_v3_bytes\": {}, \"compressed_v4_bytes\": {}, \
             \"ratio_v3_over_v4\": {:.3}, \"cache_budget_bytes\": {}, \
             \"cache_resident_bytes\": {}, \"cache_hit_rate\": {:.4}}}",
            self.v3_bytes,
            self.v4_bytes,
            self.v3_bytes as f64 / self.v4_bytes.max(1) as f64,
            self.cache_budget,
            self.cache.cached_bytes,
            self.cache_hit_rate(),
        )
    }
}

/// Measures [`StoreFootprint`] for `index`: persists it at both format
/// versions (counting every key and value byte), then warms a
/// [`KvBackedIndex`] over the compressed store with one pass of
/// `queries` to observe cache residency at the given byte budget.
pub fn store_footprint(
    index: &Index,
    queries: &[Vec<String>],
    cache_budget: usize,
) -> StoreFootprint {
    let dump_bytes = |store: &MemKv| -> usize {
        store
            .scan_range(b"", None)
            .expect("dump store")
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum()
    };
    let mut flat = MemKv::new();
    persist::persist_versioned(index, &mut flat, persist::V3_FORMAT_VERSION).expect("persist v3");
    let v3_bytes = dump_bytes(&flat);
    let mut packed = MemKv::new();
    persist::persist_versioned(index, &mut packed, persist::FORMAT_VERSION).expect("persist v4");
    let v4_bytes = dump_bytes(&packed);

    let reader = Arc::new(
        KvBackedIndex::open(Box::new(packed))
            .expect("open compressed store")
            .with_cache_budget(cache_budget),
    );
    let engine = XRefineEngine::from_reader(
        Arc::clone(&reader) as Arc<dyn IndexReader>,
        EngineConfig::default(),
    );
    for keywords in queries {
        engine
            .answer_query(Query::from_keywords(keywords.iter().cloned()))
            .expect("footprint query");
    }
    StoreFootprint {
        v3_bytes,
        v4_bytes,
        cache_budget,
        cache: reader.cache_stats(),
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Nearest-rank percentile of an ascending-sorted latency list: the
/// smallest value whose rank is at least `q·n`, i.e. `sorted[⌈q·n⌉−1]`
/// (ranks are 1-based). For `q = 0.5` over `1..=100` ms this is 50 ms —
/// the 50th of 100 values, not the 51st. Quantiles are clamped to the
/// list, so `q ≤ 0` yields the minimum and `q ≥ 1` the maximum.
///
/// Shared by the CLI batch reporter and the `bench_serve` load
/// generator so both report identical definitions.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let n = sorted.len();
    if n == 0 {
        return Duration::ZERO;
    }
    let rank = (q * n as f64).ceil() as usize; // 1-based nearest rank
    sorted[rank.clamp(1, n) - 1]
}

/// [`percentile`] over an unsorted list: sorts a scratch copy first.
/// Convenience for call sites that only need one-shot quantiles.
pub fn percentile_of(latencies: &[Duration], q: f64) -> Duration {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    percentile(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_build() {
        let d = dblp(0.01);
        assert!(d.len() > 50);
        let b = baseball();
        assert!(b.len() > 100);
    }

    #[test]
    fn store_footprint_reports_a_smaller_compressed_store() {
        let doc = dblp(0.02);
        let index = Index::build(Arc::clone(&doc));
        let queries = vec![
            vec!["xml".to_string(), "query".to_string()],
            vec!["database".to_string(), "system".to_string()],
        ];
        let fp = store_footprint(&index, &queries, 16 * 1024);
        assert!(
            fp.v4_bytes < fp.v3_bytes,
            "compressed store not smaller: v3 {} v4 {}",
            fp.v3_bytes,
            fp.v4_bytes
        );
        assert!(fp.cache.cached_bytes <= fp.cache_budget);
        assert!((0.0..=1.0).contains(&fp.cache_hit_rate()));
        let json = fp.json();
        assert!(json.contains("\"compressed_v4_bytes\""));
        assert!(json.contains("\"cache_resident_bytes\""));
    }

    #[test]
    fn timing_helper_is_positive() {
        let t = time_ms(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            3,
        );
        assert!(t >= 0.0);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        // Even length: the 50th percentile of 100 values is rank
        // ⌈0.5·100⌉ = 50 — the old round((n−1)·q) overshot to 51 ms.
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 0.999), Duration::from_millis(100));
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&ms, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);

        // Odd length: median of 1..=5 is the 3rd value.
        let odd: Vec<Duration> = (1..=5).map(Duration::from_millis).collect();
        assert_eq!(percentile(&odd, 0.50), Duration::from_millis(3));

        let one = [Duration::from_millis(7)];
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(percentile(&one, q), one[0]);
        }
    }

    #[test]
    fn percentile_of_sorts_first() {
        let ms: Vec<Duration> = [30u64, 10, 20]
            .iter()
            .map(|&v| Duration::from_millis(v))
            .collect();
        assert_eq!(percentile_of(&ms, 1.0), Duration::from_millis(30));
        assert_eq!(percentile_of(&ms, 0.5), Duration::from_millis(20));
    }
}

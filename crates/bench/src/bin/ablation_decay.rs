//! Ablation: the decay factor ρ of Guideline 4 (Formula 6). The paper
//! states ρ = 0.8 "is a good choice as evident by our empirical study"
//! (§IV-A); this sweep regenerates that evidence.

use bench::{dblp, f3, Table};
use datagen::{generate_workload, WorkloadConfig};
use evalkit::{evaluate_ranking, refinement_pool};
use std::sync::Arc;
use xrefine::RankingConfig;

fn main() {
    let doc = dblp(0.5);
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 9,
            ..Default::default()
        },
    );
    let pool: Vec<_> = refinement_pool(&workload).into_iter().take(50).collect();

    let mut t = Table::new(&["decay rho", "CG@1", "CG@2", "CG@3", "CG@4"]);
    for decay in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let config = RankingConfig {
            decay,
            ..Default::default()
        };
        let row = evaluate_ranking(Arc::clone(&doc), &pool, config, 4, &format!("{decay}"));
        t.row(vec![
            row.label,
            f3(row.cg[0]),
            f3(row.cg[1]),
            f3(row.cg[2]),
            f3(row.cg[3]),
        ]);
    }
    println!("== Ablation: decay factor sweep (paper picks 0.8) ==\n");
    t.print();
}

//! `error-context`: a `KvError::Corrupt` constructed with an empty
//! context string is a dead end for whoever reads the log at 3am.
//! Every `KvError::corrupt(..)` / `corrupt_page(..)` call and every
//! `Corrupt { .. }` literal must carry a non-empty, non-`format!("")`
//! context.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

pub const RULE: &str = "error-context";

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !Config::in_scope(&file.path, &config.error_context_paths) {
        return;
    }
    let toks = file.code_tokens();
    for i in 0..toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        if matches!(t.kind, TokenKind::Ident) && i + 1 < toks.len() && toks[i + 1].is_punct('(') {
            // `corrupt(context)` / `corrupt_page(page, context)`
            let arg_index = match t.text.as_str() {
                "corrupt" => 0,
                "corrupt_page" => 1,
                _ => continue,
            };
            if let Some(arg) = nth_arg(&toks, i + 1, arg_index) {
                if is_empty_context(&arg) {
                    super::emit(
                        out,
                        file,
                        RULE,
                        t.line,
                        t.col,
                        format!("`{}` called with an empty context", t.text),
                        "say what was being decoded and what was wrong with it".into(),
                    );
                }
            }
        }
        // `Corrupt { page: …, context: "" }`
        if t.is_ident("Corrupt") && i + 1 < toks.len() && toks[i + 1].is_punct('{') {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1
                    && toks[j].is_ident("context")
                    && j + 1 < toks.len()
                    && toks[j + 1].is_punct(':')
                {
                    let field: Vec<&Token> = toks[j + 2..]
                        .iter()
                        .copied()
                        .take_while(|t| !t.is_punct(',') && !t.is_punct('}'))
                        .collect();
                    if is_empty_context(&field) {
                        super::emit(
                            out,
                            file,
                            RULE,
                            toks[j].line,
                            toks[j].col,
                            "`Corrupt { .. }` built with an empty context".into(),
                            "say what was being decoded and what was wrong with it".into(),
                        );
                    }
                }
                j += 1;
            }
        }
    }
}

/// The tokens of the `n`th (0-based) argument of a call whose opening
/// paren is at `toks[open]`. Argument boundaries are commas at paren
/// depth 1 outside braces/brackets.
fn nth_arg<'a>(toks: &[&'a Token], open: usize, n: usize) -> Option<Vec<&'a Token>> {
    let mut paren = 0usize;
    let mut brace = 0usize;
    let mut bracket = 0usize;
    let mut arg = 0usize;
    let mut current = Vec::new();
    for t in &toks[open..] {
        match t.kind {
            TokenKind::Punct('(') => {
                paren += 1;
                if paren == 1 {
                    continue; // don't include the opening paren
                }
            }
            TokenKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    return (arg == n).then_some(current);
                }
            }
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace = brace.saturating_sub(1),
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
            TokenKind::Punct(',') if paren == 1 && brace == 0 && bracket == 0 => {
                if arg == n {
                    return Some(current);
                }
                arg += 1;
                continue;
            }
            _ => {}
        }
        if arg == n {
            current.push(*t);
        }
    }
    None
}

/// `""` (optionally followed by `.to_string()` / `.into()` / …),
/// `String::new()`, or `format!("")` with no substitutions.
fn is_empty_context(arg: &[&Token]) -> bool {
    match arg {
        [] => false,
        [first, ..] if matches!(first.kind, TokenKind::Str) => first.text.is_empty(),
        [a, b, c, d, ..] if a.is_ident("String") => {
            b.is_punct(':') && c.is_punct(':') && d.is_ident("new")
        }
        [a, b, c, d, rest @ ..] if a.is_ident("format") => {
            b.is_punct('!')
                && c.is_punct('(')
                && matches!(d.kind, TokenKind::Str)
                && d.text.is_empty()
                && rest.iter().all(|t| t.is_punct(')'))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn findings(src: &str) -> Vec<(usize, String)> {
        let file = SourceFile::parse("crates/kvstore/src/wal.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&file, &Config::workspace_defaults(), &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn empty_contexts_are_flagged() {
        let fs = findings(
            "fn f() {\n\
             return Err(KvError::corrupt(\"\"));\n\
             return Err(KvError::corrupt_page(7, String::new()));\n\
             return Err(KvError::corrupt(format!(\"\")));\n\
             }\n",
        );
        assert_eq!(
            fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "{fs:?}"
        );
    }

    #[test]
    fn informative_contexts_pass() {
        let fs = findings(
            "fn f() {\n\
             return Err(KvError::corrupt(\"wal record truncated\"));\n\
             return Err(KvError::corrupt_page(7, format!(\"page {} crc mismatch\", id)));\n\
             return Err(KvError::corrupt(format!(\"{what} out of range\")));\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn struct_literal_contexts_are_checked() {
        let fs = findings(
            "fn f() {\n\
             let a = KvError::Corrupt { page: None, context: \"\".to_string() };\n\
             let b = KvError::Corrupt { page: None, context: \"short header\".into() };\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].0, 2);
    }

    #[test]
    fn definition_sites_do_not_trip_the_rule() {
        let fs = findings("pub fn corrupt(context: impl Into<String>) -> Self {\n    x\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }
}

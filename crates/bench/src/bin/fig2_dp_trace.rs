//! Figure 2: the dynamic-programming array `C` filled by
//! `getOptimalRQ(Q, T)` on the paper's Example 3.

use bench::Table;
use lexicon::{RefineOp, Rule, RuleSet, RuleSource};
use std::collections::HashSet;
use xrefine::{get_top_optimal_rqs, Query};

fn main() {
    // Example 3: Q = {WWW, article, machine, learn, ing},
    // T = {machine, inproceedings, learning, world, wide, web},
    // rules r3, r4, r6 of Table II, deletion cost 2.
    let q = Query::from_keywords(["www", "article", "machine", "learn", "ing"]);
    let mut rules = RuleSet::new().with_deletion_cost(2.0);
    rules.add(Rule::new(
        &["article"],
        &["inproceedings"],
        RefineOp::Substitute,
        RuleSource::Synonym,
        1.0,
    ));
    rules.add(Rule::new(
        &["learn", "ing"],
        &["learning"],
        RefineOp::Merge,
        RuleSource::Merging,
        1.0,
    ));
    rules.add(Rule::new(
        &["www"],
        &["world", "wide", "web"],
        RefineOp::Substitute,
        RuleSource::Acronym,
        1.0,
    ));
    let t: HashSet<&str> = [
        "machine",
        "inproceedings",
        "learning",
        "world",
        "wide",
        "web",
    ]
    .into_iter()
    .collect();
    let avail = |w: &str| t.contains(w);

    println!("Q = {q}");
    println!("T = {t:?}\n");
    let res = get_top_optimal_rqs(&q, &avail, &rules, 4);

    let mut table = Table::new(&["prefix S[1..i]", "C[i]"]);
    for (i, c) in res.prefix_costs.iter().enumerate() {
        let prefix = if i == 0 {
            "(empty)".to_string()
        } else {
            q.keywords()[..i].join(",")
        };
        table.row(vec![prefix, format!("{c}")]);
    }
    table.print();

    println!("\nTop candidates:");
    for cand in &res.candidates {
        println!("  {cand}");
    }
    assert_eq!(res.prefix_costs, vec![0.0, 1.0, 2.0, 2.0, 4.0, 3.0]);
    println!("\ntrace matches the paper's Figure 2 recurrence (C = [0,1,2,2,4,3])");
}

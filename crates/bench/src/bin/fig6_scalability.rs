//! Figure 6: Top-3 refinement time over data sets of increasing size
//! (20% to 100% of the DBLP corpus), for Partition and SLE.
//!
//! Expected shape (paper §VIII-B): both near-linear in the data size;
//! SLE shows a visible jump somewhere in the 60%→80% step because its
//! cost depends on how early the final Top-K RQs are discovered.

use bench::{dblp, engine, f3, time_ms, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{Algorithm, Query};

fn main() {
    let mut t = Table::new(&["data size", "elements", "Partition (ms)", "SLE (ms)"]);
    for pct in [20, 40, 60, 80, 100] {
        let doc = dblp(pct as f64 / 100.0);
        let elements = doc.len();
        let workload: Vec<_> = generate_workload(
            &doc,
            &WorkloadConfig {
                per_kind: 11,
                ..Default::default()
            },
        )
        .into_iter()
        .filter(|q| q.kind != PerturbKind::None)
        .take(40)
        .collect();

        let mut e = engine(doc, Algorithm::Partition, 3);
        let tp = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        e.config_mut().algorithm = Algorithm::ShortListEager;
        let ts = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        t.row(vec![
            format!("{pct}%"),
            format!("{elements}"),
            f3(tp),
            f3(ts),
        ]);
    }
    println!("== Figure 6: avg per-query Top-3 refinement time vs data size ==\n");
    t.print();
}

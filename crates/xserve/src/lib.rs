//! `xserve` — the long-running serving layer over the XRefine engine.
//!
//! The engine has been `Send + Sync` since PR 2; this crate is the
//! chassis that lets clients actually connect to it: a hand-rolled
//! HTTP/1.1 server over TCP (zero external dependencies, like every
//! other substrate in this workspace) with the admission-control
//! behaviours a server needs before it can face open-loop load:
//!
//! * **sharded accept/worker model** — one acceptor thread hands each
//!   connection to a dedicated connection thread (bounded by
//!   [`ServeConfig::max_connections`]); parsed requests are pushed onto
//!   per-worker bounded queues ([`queue::ShardedQueue`], two-choice
//!   routing) drained by [`ServeConfig::workers`] query workers sharing
//!   one engine;
//! * **load shedding** — a request that finds both probed shards full is
//!   answered `503 Service Unavailable` with a `Retry-After` header
//!   instead of queueing unboundedly; connections beyond the cap are
//!   shed the same way;
//! * **per-connection read/write timeouts** — a slow or idle peer cannot
//!   pin a connection thread (reads poll in short slices so drain is
//!   observed promptly; a half-received request past its budget gets
//!   `408`);
//! * **graceful drain** — on SIGTERM/SIGINT ([`signal`]), on
//!   `POST /admin/drain`, or via [`server::ServerHandle::begin_drain`]:
//!   stop accepting, let every queued ("in-flight") request finish and
//!   flush, then exit;
//! * **observability** — `GET /metrics` renders the process-global `obs`
//!   registry in Prometheus text (answered inline on the connection
//!   thread, so it works even when the query queue is saturated), and
//!   the server feeds the `serve_*` counters/gauges/histograms
//!   catalogued in DESIGN.md §4e.
//!
//! Endpoints: `GET /query?q=<keywords>` (JSON refinement outcome),
//! `GET /metrics`, `GET /healthz`, `POST /admin/drain`.
//!
//! The load generator that drives this server to overload lives in
//! `crates/bench/src/bin/bench_serve.rs` and writes
//! `results/BENCH_serve.json`.

pub mod conn;
pub mod http;
pub mod queue;
pub mod server;
pub mod service;
pub mod signal;

pub use server::{start, ServerHandle};
pub use service::{EngineService, LiveEngineService, QueryService, ServiceReply, UpdateRequest};

use std::time::Duration;

/// Server tunables. The defaults suit an interactive deployment; the
/// lifecycle tests and `bench_serve` shrink queues and timeouts to
/// provoke shedding quickly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878`; port 0 binds an ephemeral
    /// port (the bound address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Query worker threads (= queue shards).
    pub workers: usize,
    /// Total queued-request capacity, split across the worker shards.
    pub queue_capacity: usize,
    /// Connections beyond this are answered `503` and closed.
    pub max_connections: usize,
    /// Budget for reading one request once its first byte arrived; also
    /// the idle keep-alive timeout.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Admission-to-response budget: a request still queued when this
    /// expires is answered `504` and never executed.
    pub request_timeout: Duration,
    /// How long drain waits for connection threads after the listener
    /// closes before giving up on stragglers.
    pub drain_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 256,
            max_connections: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            drain_grace: Duration::from_secs(30),
        }
    }
}

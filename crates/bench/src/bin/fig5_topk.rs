//! Figure 5: effect of K on Top-K query refinement time, for Partition
//! and SLE, on (a) DBLP and (b) Baseball.
//!
//! Expected shape (paper §VIII-B): Partition's time grows slowly with K;
//! SLE's grows much faster beyond K = 3; both essentially flat on the
//! small Baseball corpus.

use bench::{baseball, dblp, engine, f3, time_ms, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use std::sync::Arc;
use xmldom::Document;
use xrefine::{Algorithm, Query};

fn run(name: &str, doc: Arc<Document>, n_queries: usize) {
    let workload: Vec<_> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: n_queries / 4 + 1,
            ..Default::default()
        },
    )
    .into_iter()
    .filter(|q| q.kind != PerturbKind::None)
    .take(n_queries)
    .collect();

    let mut e = engine(doc, Algorithm::Partition, 1);
    let mut t = Table::new(&["K", "Partition (ms)", "SLE (ms)"]);
    for k in 1..=6usize {
        e.config_mut().k = k;
        e.config_mut().algorithm = Algorithm::Partition;
        let tp = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        e.config_mut().algorithm = Algorithm::ShortListEager;
        let ts = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        t.row(vec![format!("{k}"), f3(tp), f3(ts)]);
    }
    println!(
        "\n== Figure 5({name}): avg per-query Top-K time over {} queries ==\n",
        workload.len()
    );
    t.print();
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    if arg != "baseball" {
        run("a) DBLP", dblp(1.0), 40);
    }
    if arg != "dblp" {
        run("b) Baseball", baseball(), 20);
    }
}

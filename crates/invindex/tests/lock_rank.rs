//! Deadlock regression tests for the maintenance lock hierarchy.
//!
//! The static half of the lock-order story is xlint's `lock-order` rule;
//! this is the runtime half: `obs::lockrank` keeps a thread-local stack
//! of held ranks and `debug_assert`s that acquisitions are strictly
//! increasing. Eight threads hammer the real sharded cache (whose
//! instrumented sites acquire `cache.shard` under the runtime checker)
//! while nesting modelled `maint.writer` → `maint.epoch` acquisitions
//! outside it — the order a committing `MaintIndex` writer uses. The
//! inverted order must panic, in debug builds only.

use invindex::{Posting, PostingList, ShardedListCache};
use obs::lockrank;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use xmldom::{Dewey, NodeTypeId};

fn list(n: u32) -> Arc<PostingList> {
    let mut l = PostingList::new();
    l.push(Posting::new(
        Dewey::new(vec![0, n]).expect("non-empty dewey"),
        NodeTypeId(1),
    ));
    Arc::new(l)
}

/// Writer-before-epoch-before-shard (the production commit order) from
/// eight threads at once: every acquisition is strictly increasing, so
/// the checker stays quiet and nothing deadlocks.
#[test]
fn eight_threads_nest_writer_epoch_then_shard_cleanly() {
    const THREADS: usize = 8;
    const ROUNDS: u32 = 200;
    let writer = Arc::new(Mutex::new(0u64));
    let epoch = Arc::new(Mutex::new(0u64));
    let cache = Arc::new(ShardedListCache::new(1 << 16, 4));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let writer = Arc::clone(&writer);
            let epoch = Arc::clone(&epoch);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let id = (t as u32) * ROUNDS + round;
                    // The commit path's shape: hold the writer mutex,
                    // invalidate/seed cache shards (CACHE_SHARD via the
                    // cache's own instrumentation), then swap the epoch
                    // pointer. Shard guards release before the epoch
                    // acquisition, exactly like `MaintIndex::publish`.
                    let _writer_rank =
                        lockrank::acquire(lockrank::rank::MAINT_WRITER, "maint.writer");
                    let _writer_guard = writer.lock().expect("writer lock");
                    if cache.get(id).is_none() {
                        cache.insert(id, list(id), 64);
                    }
                    cache.invalidate(id.wrapping_add(1));
                    let _epoch_rank = lockrank::acquire(lockrank::rank::MAINT_EPOCH, "maint.epoch");
                    let _epoch_guard = epoch.lock().expect("epoch lock");
                }
                cache.check_invariants();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    assert!(
        lockrank::held_ranks().is_empty(),
        "main thread should hold no ranks"
    );
}

/// The inverted nesting — a shard held, then the epoch pointer — is
/// exactly the shape that deadlocks against the clean order above. The
/// runtime checker must refuse it before any scheduler interleaving
/// gets a say.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank violation")]
fn shard_then_epoch_nesting_panics_in_debug() {
    let cache = ShardedListCache::new(1 << 12, 4);
    // Entering the shard via the instrumented `insert` is fine on its
    // own; the violation is taking the epoch rank while a same-thread
    // shard guard would still be live.
    cache.insert(1, list(1), 64);
    let _shard_rank = lockrank::acquire(lockrank::rank::CACHE_SHARD, "cache.shard");
    let _epoch_rank = lockrank::acquire(lockrank::rank::MAINT_EPOCH, "maint.epoch");
}

/// Same inversion one level up: the epoch pointer must never be held
/// when the writer mutex is requested (a reader pinning a snapshot
/// cannot block a committer into a cycle).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank violation")]
fn epoch_then_writer_nesting_panics_in_debug() {
    let _epoch_rank = lockrank::acquire(lockrank::rank::MAINT_EPOCH, "maint.epoch");
    let _writer_rank = lockrank::acquire(lockrank::rank::MAINT_WRITER, "maint.writer");
}

/// In release builds the checker compiles down to nothing: the guard is
/// a ZST and inverted acquisition is (dangerously) silent — that's the
/// zero-overhead contract, and why debug CI runs the tests above.
#[cfg(not(debug_assertions))]
#[test]
fn release_checker_is_zero_cost_and_silent() {
    assert_eq!(std::mem::size_of::<lockrank::RankGuard>(), 0);
    let _shard = lockrank::acquire(lockrank::rank::CACHE_SHARD, "cache.shard");
    let _epoch = lockrank::acquire(lockrank::rank::MAINT_EPOCH, "maint.epoch");
    assert!(lockrank::held_ranks().is_empty());
}

//! The golden-fixture self-test. Each `crates/xlint/tests/fixtures/*.rs`
//! file starts with a `// xlint-fixture: path=<pretend path>` header so
//! path-scoped rules apply as if the file lived there, and has a sibling
//! `<name>.expected` listing the findings it must produce, one
//! `<line>:<rule>` per line (empty file = must be clean). The runner
//! compares the multisets and reports both missed and spurious findings.

use crate::config::Config;
use crate::source::FileKind;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Result of running one fixture.
pub struct FixtureOutcome {
    pub name: String,
    pub passed: bool,
    /// Human-readable mismatch description, empty when passed.
    pub details: String,
    /// Expected findings that were produced (multiset intersection).
    pub matched: usize,
    /// Expected findings that were not produced.
    pub missed: usize,
    /// Produced findings that were not expected.
    pub spurious: usize,
}

impl FixtureOutcome {
    /// A failing fixture that still produced *some* of its expected
    /// findings: the rule fires but its shape drifted. The CLI maps
    /// "every failure is partial" to a distinct exit code so CI can
    /// tell rule-drift from rule-dead.
    pub fn partial(&self) -> bool {
        !self.passed && self.matched > 0
    }

    /// One JSON object, for `--json` output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"passed\":{},\"matched\":{},\"missed\":{},\"spurious\":{},\"details\":\"{}\"}}",
            crate::diag::json_escape(&self.name),
            self.passed,
            self.matched,
            self.missed,
            self.spurious,
            crate::diag::json_escape(self.details.trim_end())
        )
    }
}

/// A deterministic config for fixtures — frozen here rather than loaded
/// from the live `lockorder.toml`/`DESIGN.md` so the golden files don't
/// churn when workspace policy evolves.
pub fn fixture_config() -> Config {
    let mut c = Config::workspace_defaults();
    for (name, rank) in [("kvindex.store", 10), ("cache.shard", 20)] {
        c.lock_ranks.insert(name.to_string(), rank);
    }
    for name in [
        "kvstore_pager_syncs_total",
        "invindex_cache_resident_bytes",
        "query",
        "stack-refine",
        "pages.read",
    ] {
        c.catalogue.insert(name.to_string());
    }
    c.protocol = vec![("rename".into(), "sync_parent_dir".into())];
    c
}

/// Runs every fixture in `dir`. Errors only on I/O or malformed
/// fixtures; rule mismatches are reported per-fixture.
pub fn run_fixtures(dir: &Path, config: &Config) -> Result<Vec<FixtureOutcome>, String> {
    let mut outcomes = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read fixture dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no fixtures found in {}", dir.display()));
    }
    for path in entries {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let pretend = text
            .lines()
            .next()
            .and_then(|l| l.trim().strip_prefix("// xlint-fixture: path="))
            .ok_or_else(|| {
                format!(
                    "{}: first line must be `// xlint-fixture: path=<pretend path>`",
                    path.display()
                )
            })?
            .trim()
            .to_string();
        let expected_path = path.with_extension("expected");
        let expected_text = fs::read_to_string(&expected_path)
            .map_err(|e| format!("{}: {e}", expected_path.display()))?;
        let expected = parse_expected(&expected_text)
            .map_err(|e| format!("{}: {e}", expected_path.display()))?;

        let findings = crate::lint_source(&pretend, &text, FileKind::Production, config);
        let mut actual: BTreeMap<(usize, String), usize> = BTreeMap::new();
        for f in &findings {
            *actual.entry((f.line, f.rule.to_string())).or_default() += 1;
        }

        let mut details = String::new();
        let (mut matched, mut missed, mut spurious) = (0usize, 0usize, 0usize);
        for (key, want) in &expected {
            let got = actual.get(key).copied().unwrap_or(0);
            matched += got.min(*want);
            if got < *want {
                missed += want - got;
                details.push_str(&format!("  missed: {}:{} x{}\n", key.0, key.1, want - got));
            }
        }
        for (key, got) in &actual {
            let want = expected.get(key).copied().unwrap_or(0);
            if *got > want {
                spurious += got - want;
                details.push_str(&format!(
                    "  spurious: {}:{} x{}\n",
                    key.0,
                    key.1,
                    got - want
                ));
            }
        }
        outcomes.push(FixtureOutcome {
            name,
            passed: details.is_empty(),
            details,
            matched,
            missed,
            spurious,
        });
    }
    Ok(outcomes)
}

/// Parses an `.expected` file: `<line>:<rule>` per line, `#` comments.
fn parse_expected(text: &str) -> Result<BTreeMap<(usize, String), usize>, String> {
    let mut expected = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (num, rule) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected `<line>:<rule>`", i + 1))?;
        let num: usize = num
            .trim()
            .parse()
            .map_err(|_| format!("line {}: `{num}` is not a line number", i + 1))?;
        *expected.entry((num, rule.trim().to_string())).or_default() += 1;
    }
    Ok(expected)
}

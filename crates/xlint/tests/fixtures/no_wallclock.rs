// xlint-fixture: path=crates/slca/src/scan.rs
// Wall-clock reads in hot-path crates are findings unless justified.

fn hot_loop(&mut self) {
    let started = Instant::now();
    let stamp = std::time::SystemTime::now();
    self.advance(started, stamp);
}

fn justified(&mut self) {
    // xlint::allow(no-wallclock-in-hot-paths): read once per query at the phase boundary, not per node
    let started = Instant::now();
    self.finish(started);
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}

//! Instrumented cursors over posting lists.
//!
//! The paper's core efficiency claims (Theorems 1 and 2) are about *how
//! often* the keyword inverted lists are scanned. To make those claims
//! testable rather than taken on faith, every traversal in the refinement
//! algorithms goes through a [`ListCursor`], which counts sequential
//! advances and random accesses into shared [`ScanStats`]. Integration
//! tests assert `advances <= list length` for the one-scan algorithms.
//!
//! [`PostingsCursor`] is the block-aware sibling for v4 compressed lists
//! ([`CompressedList`]): it decodes one block at a time and uses the
//! skip table to satisfy seeks without touching blocks whose `max` label
//! falls below the target (`compress_blocks_skipped_total`).

use crate::postings::{CompressedList, Posting};
use crate::reader::ListHandle;
use kvstore::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xmldom::Dewey;

/// Shared counters for list-access instrumentation.
#[derive(Debug, Default)]
pub struct ScanStats {
    advances: AtomicU64,
    random_accesses: AtomicU64,
}

impl ScanStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Sequential cursor advances across all instrumented lists.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Relaxed)
    }

    /// Random (seek/probe) accesses across all instrumented lists.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses.load(Ordering::Relaxed)
    }

    fn bump_advance(&self) {
        self.advances.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_random(&self) {
        self.random_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sequential advance performed outside a [`ListCursor`]
    /// (algorithms that account accesses manually, e.g. rescans).
    pub fn record_advance(&self) {
        self.bump_advance();
    }

    /// Records `n` sequential advances at once.
    pub fn record_advances(&self, n: u64) {
        self.advances.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a random (probe) access performed outside a cursor.
    pub fn record_random_access(&self) {
        self.bump_random();
    }
}

/// A forward cursor over one posting list (any [`IndexReader`] backend
/// hands lists out as [`ListHandle`]s).
///
/// [`IndexReader`]: crate::reader::IndexReader
pub struct ListCursor<'a> {
    handle: &'a ListHandle,
    pos: usize,
    stats: Arc<ScanStats>,
}

impl<'a> ListCursor<'a> {
    pub fn new(handle: &'a ListHandle, stats: Arc<ScanStats>) -> Self {
        ListCursor {
            handle,
            pos: 0,
            stats,
        }
    }

    /// The posting under the cursor, or `None` at end of list.
    pub fn peek(&self) -> Option<&'a Posting> {
        self.handle.postings().get(self.pos)
    }

    /// Advances one posting, returning the posting that was under the
    /// cursor. (Deliberately cursor-style rather than `Iterator`: the
    /// callers interleave `peek`/`seek`/`skip_partition`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a Posting> {
        let p = self.handle.postings().get(self.pos)?;
        self.pos += 1;
        self.stats.bump_advance();
        Some(p)
    }

    /// True when all postings have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.handle.len()
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Total length of the underlying list.
    pub fn len(&self) -> usize {
        self.handle.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }

    /// Moves the cursor forward to the first posting `>= target`
    /// (counts as a random access; never moves backward).
    pub fn seek(&mut self, target: &Dewey) {
        self.stats.bump_random();
        let lb = self.handle.lower_bound(target);
        if lb > self.pos {
            self.pos = lb;
        }
    }

    /// Jumps past the end of the partition rooted at `partition_root`
    /// (Algorithm 2 line 8). Returns the index range of the skipped
    /// partition sub-list relative to the whole list. Skipped postings
    /// are accounted with one atomic add, so skipping a large partition
    /// is O(1) in counter traffic.
    pub fn skip_partition(&mut self, partition_root: &Dewey) -> std::ops::Range<usize> {
        let range = self.handle.partition_range(partition_root);
        let consumed = range.end.saturating_sub(self.pos.max(range.start));
        if consumed > 0 {
            self.stats.record_advances(consumed as u64);
        }
        if range.end > self.pos {
            self.pos = range.end;
        }
        range
    }

    /// Underlying handle access for sub-list slicing.
    pub fn handle(&self) -> &'a ListHandle {
        self.handle
    }
}

/// A forward cursor over a still-encoded v4 [`CompressedList`]: decodes
/// one block at a time, on demand, and answers `seek` through the skip
/// table so blocks strictly below the target are never decoded.
///
/// Accounting matches [`ListCursor`]: `next` is one advance, `seek` is
/// one random access, and postings jumped over by a seek are *not*
/// advances. Block traffic lands on the process-wide
/// `compress_blocks_decoded_total` / `compress_blocks_skipped_total`
/// counters.
pub struct PostingsCursor<'a> {
    list: &'a CompressedList<'a>,
    stats: Arc<ScanStats>,
    /// Index of the next block to decode.
    block: usize,
    /// Decoded postings of the current block (empty before the first
    /// decode and after exhaustion).
    decoded: Vec<Posting>,
    /// Offset into `decoded`.
    at: usize,
    /// Postings consumed in blocks before the current one.
    base: usize,
    /// Blocks this cursor decoded (also on `compress_blocks_decoded_total`).
    blocks_decoded: u64,
    /// Blocks this cursor skipped undecoded (also on
    /// `compress_blocks_skipped_total`).
    blocks_skipped: u64,
}

impl<'a> PostingsCursor<'a> {
    pub fn new(list: &'a CompressedList<'a>, stats: Arc<ScanStats>) -> Self {
        PostingsCursor {
            list,
            stats,
            block: 0,
            decoded: Vec::new(),
            at: 0,
            base: 0,
            blocks_decoded: 0,
            blocks_skipped: 0,
        }
    }

    /// Blocks this cursor has decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_decoded
    }

    /// Blocks this cursor has skipped via the skip table without
    /// decoding.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// Decodes the next block into `decoded` if the current one is
    /// spent. Returns `false` at end of list.
    fn fill(&mut self) -> Result<bool> {
        while self.at >= self.decoded.len() {
            if self.block >= self.list.blocks().len() {
                return Ok(false);
            }
            self.base += self.decoded.len();
            self.decoded = self.list.decode_block(self.block)?;
            self.at = 0;
            self.block += 1;
            self.blocks_decoded += 1;
            obs::counter!("compress_blocks_decoded_total").inc();
        }
        Ok(true)
    }

    /// The posting under the cursor, or `None` at end of list. Decodes
    /// the next block if needed (hence fallible, unlike
    /// [`ListCursor::peek`]).
    pub fn peek(&mut self) -> Result<Option<&Posting>> {
        if !self.fill()? {
            return Ok(None);
        }
        Ok(self.decoded.get(self.at))
    }

    /// Advances one posting, returning the posting that was under the
    /// cursor.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Posting>> {
        if !self.fill()? {
            return Ok(None);
        }
        let p = self.decoded.get(self.at).cloned();
        if p.is_some() {
            self.at += 1;
            self.stats.bump_advance();
        }
        Ok(p)
    }

    /// True when all postings have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.at >= self.decoded.len() && self.block >= self.list.blocks().len()
    }

    /// Current cursor offset within the whole list.
    pub fn position(&self) -> usize {
        self.base + self.at
    }

    /// Total length of the underlying list.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Moves the cursor forward to the first posting `>= target` (one
    /// random access; never moves backward). Blocks whose `max` label is
    /// below the target are skipped via the skip table without being
    /// decoded; postings jumped over are not counted as advances,
    /// mirroring [`ListCursor::seek`].
    pub fn seek(&mut self, target: &Dewey) -> Result<()> {
        self.stats.bump_random();
        let lb = self.list.lower_bound_block(target);
        if lb >= self.block {
            // Target is past the current block: drop it and fast-forward
            // the block index through the skip table.
            let skipped = (lb - self.block) as u64;
            if skipped > 0 {
                self.blocks_skipped += skipped;
                obs::counter!("compress_blocks_skipped_total").add(skipped);
            }
            if lb > self.block || !self.decoded.is_empty() {
                let meta = self.list.blocks().get(lb);
                self.base = meta.map_or(self.list.len(), |m| m.start);
                self.decoded = Vec::new();
                self.at = 0;
                self.block = lb;
            }
            if !self.fill()? {
                return Ok(());
            }
        }
        // In-block (or already-decoded-block) positioning; never rewind.
        let pos = self.decoded.partition_point(|p| p.dewey < *target);
        if pos > self.at {
            self.at = pos;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::Posting;
    use xmldom::NodeTypeId;

    fn list() -> ListHandle {
        ListHandle::from_postings(
            ["0.0.0", "0.0.1", "0.1.0", "0.1.2", "0.2"]
                .iter()
                .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
                .collect(),
        )
    }

    #[test]
    fn sequential_scan_counts_advances() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        let mut n = 0;
        while c.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(c.is_exhausted());
        assert_eq!(stats.advances(), 5);
        assert_eq!(stats.random_accesses(), 0);
        assert_eq!(c.next(), None);
        assert_eq!(stats.advances(), 5); // no phantom advances at EOF
    }

    #[test]
    fn seek_is_random_access_and_monotone() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        c.seek(&"0.1".parse().unwrap());
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        // seeking backwards does not rewind
        c.seek(&"0.0".parse().unwrap());
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        assert_eq!(stats.random_accesses(), 2);
    }

    #[test]
    fn skip_partition_jumps_whole_subtree() {
        let l = list();
        let stats = ScanStats::new();
        let mut c = ListCursor::new(&l, Arc::clone(&stats));
        let range = c.skip_partition(&"0.0".parse().unwrap());
        assert_eq!(range, 0..2);
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.1.0");
        // skipped postings are accounted as advances (they were consumed)
        assert_eq!(stats.advances(), 2);
        let range = c.skip_partition(&"0.1".parse().unwrap());
        assert_eq!(range, 2..4);
        assert_eq!(c.peek().unwrap().dewey.to_string(), "0.2");
    }

    // ----- PostingsCursor over compressed lists -----------------------

    use crate::postings::{CompressedList, PostingList, BLOCK_POSTINGS};

    /// Five full blocks plus a tail, so block skips have room to matter.
    fn compressed_fixture() -> PostingList {
        let mut postings = Vec::new();
        for a in 0..11u32 {
            for b in 0..31u32 {
                postings.push(Posting::new(
                    xmldom::Dewey::new(vec![0, a, b]).unwrap(),
                    NodeTypeId(a % 3),
                ));
            }
        }
        PostingList::from_sorted(postings)
    }

    #[test]
    fn compressed_cursor_full_scan_matches_list() {
        let list = compressed_fixture();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        let stats = ScanStats::new();
        let mut c = PostingsCursor::new(&parsed, Arc::clone(&stats));
        let mut got = Vec::new();
        while let Some(p) = c.next().unwrap() {
            got.push(p);
        }
        assert_eq!(got.as_slice(), list.as_slice());
        assert!(c.is_exhausted());
        assert_eq!(c.position(), list.len());
        assert_eq!(stats.advances(), list.len() as u64);
        assert_eq!(stats.random_accesses(), 0);
        assert_eq!(c.next().unwrap(), None); // no phantom advance at EOF
        assert_eq!(stats.advances(), list.len() as u64);
    }

    #[test]
    fn compressed_cursor_seek_agrees_with_list_cursor() {
        let list = compressed_fixture();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        let handle = ListHandle::from_postings(list.as_slice().to_vec());
        let probes = ["0", "0.0.30", "0.3.5", "0.3.5.1", "0.7.0", "0.10.30", "1"];
        for probe in probes {
            let target: xmldom::Dewey = probe.parse().unwrap();
            let stats_c = ScanStats::new();
            let mut c = PostingsCursor::new(&parsed, Arc::clone(&stats_c));
            c.seek(&target).unwrap();
            let stats_l = ScanStats::new();
            let mut l = ListCursor::new(&handle, Arc::clone(&stats_l));
            l.seek(&target);
            assert_eq!(c.position(), l.position(), "probe {probe}");
            assert_eq!(c.peek().unwrap(), l.peek(), "probe {probe}");
            assert_eq!(stats_c.random_accesses(), 1);
            assert_eq!(stats_c.advances(), 0, "seek must not count advances");
        }
    }

    #[test]
    fn compressed_cursor_interleaved_seek_and_next() {
        let list = compressed_fixture();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        let stats = ScanStats::new();
        let mut c = PostingsCursor::new(&parsed, Arc::clone(&stats));
        // read a few, jump several blocks, read across a block boundary
        assert_eq!(c.next().unwrap().unwrap().dewey.to_string(), "0.0.0");
        c.seek(&"0.5.29".parse().unwrap()).unwrap();
        assert_eq!(c.next().unwrap().unwrap().dewey.to_string(), "0.5.29");
        assert_eq!(c.next().unwrap().unwrap().dewey.to_string(), "0.5.30");
        assert_eq!(c.next().unwrap().unwrap().dewey.to_string(), "0.6.0");
        // backward seek never rewinds
        c.seek(&"0.0.0".parse().unwrap()).unwrap();
        assert_eq!(c.peek().unwrap().unwrap().dewey.to_string(), "0.6.1");
        // position is consistent with the uncompressed lower bound
        assert_eq!(c.position(), list.lower_bound(&"0.6.1".parse().unwrap()));
    }

    #[test]
    fn compressed_cursor_seek_past_end_exhausts() {
        let list = compressed_fixture();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        let stats = ScanStats::new();
        let mut c = PostingsCursor::new(&parsed, Arc::clone(&stats));
        c.seek(&"9".parse().unwrap()).unwrap();
        assert!(c.is_exhausted());
        assert_eq!(c.position(), list.len());
        assert_eq!(c.next().unwrap(), None);
    }

    #[test]
    fn compressed_cursor_skips_whole_blocks() {
        let list = compressed_fixture();
        assert!(list.len() > 5 * BLOCK_POSTINGS);
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        let stats = ScanStats::new();
        let mut c = PostingsCursor::new(&parsed, Arc::clone(&stats));
        // jump straight into the last block: earlier blocks stay encoded
        c.seek(&list.last().unwrap().dewey.clone()).unwrap();
        assert_eq!(c.next().unwrap().unwrap(), list.last().unwrap().clone());
        assert_eq!(
            c.blocks_decoded(),
            1,
            "seek must decode only the target block"
        );
        assert_eq!(c.blocks_skipped() as usize, parsed.blocks().len() - 1);
    }
}

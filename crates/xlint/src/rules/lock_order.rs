//! `lock-order`: every bare `.lock()` / `.read()` / `.write()` call in
//! the locking crates must carry an `// xlint::lock(<name>)` annotation
//! naming a lock from the declared hierarchy (`lockorder.toml`), and
//! lexically nested acquisitions must take locks in strictly increasing
//! rank order.
//!
//! Guard lifetimes are approximated conservatively from scopes:
//!
//! * a guard bound by `let g = …` lives until its enclosing block closes
//!   (or until an explicit `drop(g)`);
//! * an unbound guard (statement temporary, or an `if let`/`match`
//!   scrutinee temporary under Rust 2021 rules) lives until the end of
//!   its statement — the `;` at its own depth, or the `}` that returns
//!   to its own depth (the end of the `if`/`match` body it feeds).
//!
//! Cross-function nesting is invisible to a lexical analysis; the
//! runtime rank checker in `obs::lockrank` covers that half (see
//! DESIGN.md §Static analysis).

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "lock-order";

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

#[derive(Debug)]
struct Active {
    name: String,
    rank: u32,
    /// Brace depth at the acquisition site.
    depth: usize,
    /// `let` binding holding the guard, if any.
    binding: Option<String>,
    /// Statement temporary: expires at `;` or at the `}` returning to
    /// `depth` (scrutinee temporaries).
    temp: bool,
}

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !Config::in_scope(&file.path, &config.lock_paths) {
        return;
    }
    let toks = file.code_tokens();
    let mut depth = 0usize;
    let mut active: Vec<Active> = Vec::new();
    // `let` binding of the statement currently being scanned.
    let mut stmt_binding: Option<String> = None;
    let mut pending_let = false;

    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                pending_let = false;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                // Guards scoped deeper than here are gone; scrutinee
                // temporaries acquired *at* this depth end with the
                // body we just closed.
                active.retain(|a| a.depth <= depth && !(a.temp && a.depth == depth));
                stmt_binding = None;
                pending_let = false;
            }
            TokenKind::Punct(';') => {
                active.retain(|a| !(a.temp && a.depth == depth));
                stmt_binding = None;
                pending_let = false;
            }
            TokenKind::Ident if t.text == "let" => {
                // `if let` / `while let` scrutinees are temporaries, not
                // bindings — the pattern idents must not be captured.
                let scrutinee =
                    i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
                pending_let = !scrutinee;
                i += 1;
                continue;
            }
            TokenKind::Ident if pending_let && t.text == "mut" => {
                i += 1;
                continue;
            }
            TokenKind::Ident if pending_let => {
                stmt_binding = Some(t.text.clone());
                pending_let = false;
            }
            // `drop(g)` releases a bound guard early.
            TokenKind::Ident if t.text == "drop" => {
                if i + 2 < toks.len()
                    && toks[i + 1].is_punct('(')
                    && matches!(toks[i + 2].kind, TokenKind::Ident)
                    && i + 3 < toks.len()
                    && toks[i + 3].is_punct(')')
                {
                    let victim = &toks[i + 2].text;
                    active.retain(|a| a.binding.as_deref() != Some(victim.as_str()));
                }
                pending_let = false;
            }
            _ => {
                pending_let = false;
            }
        }

        // Acquisition pattern: `.lock()` / `.read()` / `.write()`.
        if t.is_punct('.')
            && i + 3 < toks.len()
            && matches!(toks[i + 1].kind, TokenKind::Ident)
            && ACQUIRE_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
            && toks[i + 3].is_punct(')')
        {
            let site = toks[i + 1];
            if file.is_test_line(site.line) {
                i += 1;
                continue;
            }
            match file.lock_name_at(site.line) {
                None => {
                    super::emit(
                        out,
                        file,
                        RULE,
                        site.line,
                        site.col,
                        format!(
                            "`.{}()` acquisition has no `xlint::lock(..)` annotation",
                            site.text
                        ),
                        "annotate the site with the lock's name from lockorder.toml".into(),
                    );
                }
                Some(name) => match config.lock_ranks.get(name) {
                    None => {
                        super::emit(
                            out,
                            file,
                            RULE,
                            site.line,
                            site.col,
                            format!("lock `{name}` is not declared in lockorder.toml"),
                            "add it to the [locks] hierarchy with a rank".into(),
                        );
                    }
                    Some(&rank) => {
                        if let Some(held) = active.iter().max_by_key(|a| a.rank) {
                            if rank <= held.rank {
                                super::emit(
                                    out,
                                    file,
                                    RULE,
                                    site.line,
                                    site.col,
                                    format!(
                                        "acquiring `{name}` (rank {rank}) while holding `{}` (rank {}) violates the lock hierarchy",
                                        held.name, held.rank
                                    ),
                                    "acquire locks in strictly increasing rank order, or narrow the outer guard's scope".into(),
                                );
                            }
                        }
                        active.push(Active {
                            name: name.to_string(),
                            rank,
                            depth,
                            binding: stmt_binding.clone().filter(|b| b != "_"),
                            temp: stmt_binding.is_none(),
                        });
                    }
                },
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::collections::BTreeMap;

    fn config() -> Config {
        let mut c = Config::workspace_defaults();
        let mut ranks = BTreeMap::new();
        ranks.insert("kvindex.store".to_string(), 10);
        ranks.insert("cache.shard".to_string(), 20);
        c.lock_ranks = ranks;
        c
    }

    fn findings(src: &str) -> Vec<(usize, String)> {
        let file = SourceFile::parse("crates/invindex/src/cache.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&file, &config(), &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn unannotated_and_unknown_locks_are_flagged() {
        let fs = findings(
            "fn f() {\n\
             let g = self.m.lock();\n\
             // xlint::lock(no.such.lock)\n\
             let h = self.n.lock();\n\
             }\n",
        );
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs[0].1.contains("no `xlint::lock"));
        assert!(fs[1].1.contains("not declared"));
    }

    #[test]
    fn increasing_rank_nesting_is_clean() {
        let fs = findings(
            "fn f() {\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             let shard = self.shards[0].lock(); // xlint::lock(cache.shard)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn inverted_nesting_is_flagged() {
        let fs = findings(
            "fn f() {\n\
             let shard = self.shards[0].lock(); // xlint::lock(cache.shard)\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].1.contains("violates the lock hierarchy"));
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let fs = findings(
            "fn f() {\n\
             let shard = self.shards[0].lock(); // xlint::lock(cache.shard)\n\
             drop(shard);\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn block_scoped_guard_does_not_leak() {
        let fs = findings(
            "fn f() {\n\
             {\n\
             let shard = self.shards[0].lock(); // xlint::lock(cache.shard)\n\
             }\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn statement_temporary_expires_at_semicolon() {
        let fs = findings(
            "fn f() {\n\
             self.shards[0].lock().touch(); // xlint::lock(cache.shard)\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn if_let_scrutinee_guard_lives_through_the_body() {
        // Rust 2021: the scrutinee temporary lives to the end of the
        // `if let` — nesting inside the body must respect it…
        let fs = findings(
            "fn f() {\n\
             if let Some(v) = self.shards[0].lock().get(k) { // xlint::lock(cache.shard)\n\
             let store = self.store.read(); // xlint::lock(kvindex.store)\n\
             }\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        // …but it ends with the body: a later sibling acquisition of the
        // same lock is not nested.
        let fs = findings(
            "fn f() {\n\
             if let Some(v) = self.shards[0].lock().get(k) { // xlint::lock(cache.shard)\n\
             use_it(v);\n\
             }\n\
             self.shards[1].lock().touch(); // xlint::lock(cache.shard)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn same_rank_reacquisition_is_flagged() {
        let fs = findings(
            "fn f() {\n\
             let a = self.shards[0].lock(); // xlint::lock(cache.shard)\n\
             let b = self.shards[1].lock(); // xlint::lock(cache.shard)\n\
             }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn test_code_and_rwlock_with_args_are_ignored() {
        let fs = findings(
            "#[cfg(test)]\n\
             mod tests {\n\
             fn t() { let g = m.lock(); }\n\
             }\n\
             fn prod(f: &std::fs::File) { f.read(&mut buf); }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
